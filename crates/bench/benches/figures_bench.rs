//! Criterion benches, one group per paper figure.
//!
//! These run reduced configurations (2 threads, scale 1, representative
//! benchmark subsets) so `cargo bench` terminates quickly; the full figure
//! data comes from the `figures` binary. Each group's measured quantity is
//! the wall time of regenerating the figure's core comparison, which tracks
//! the end-to-end cost of the runtimes under test.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dmt_baselines::RuntimeKind;
use dmt_bench::*;

fn quick() -> Bench {
    Bench {
        pthreads_reps: 1,
        ..Bench::default()
    }
}

fn bench_fig10(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig10_normalized");
    g.sample_size(10);
    for name in ["histogram", "reverse_index"] {
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(fig10(&b, &[2], &[name])));
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig11_scaling");
    g.sample_size(10);
    g.bench_function("kmeans_1_to_4", |bench| {
        bench.iter(|| black_box(fig11(&b, &[1, 4], &["kmeans"])));
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig12_memory");
    g.sample_size(10);
    g.bench_function("canneal_peak_pages", |bench| {
        bench.iter(|| black_box(fig12(&b, &[2], &["canneal"])));
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig13_ablation");
    g.sample_size(10);
    g.bench_function("reverse_index_ablations", |bench| {
        bench.iter(|| black_box(fig13(&b, 2, &["reverse_index"])));
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig14_coarsening");
    g.sample_size(10);
    g.bench_function("reverse_index_levels", |bench| {
        bench.iter(|| black_box(fig14(&b, 2, &["reverse_index"], &[4_096, 65_536])));
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig15_breakdown");
    g.sample_size(10);
    g.bench_function("ocean_cp_breakdown", |bench| {
        bench.iter(|| black_box(fig15(&b, 2, &["ocean_cp"])));
    });
    g.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let b = quick();
    let mut g = c.benchmark_group("fig16_lrc");
    g.sample_size(10);
    g.bench_function("ocean_cp_lrc", |bench| {
        bench.iter(|| black_box(fig16(&b, 2, &["ocean_cp"])));
    });
    g.finish();
}

fn bench_runtimes_direct(c: &mut Criterion) {
    // Direct wall-time comparison of one kernel under each runtime —
    // a sanity anchor for the virtual-time results.
    let b = quick();
    let mut g = c.benchmark_group("runtime_wall_time");
    g.sample_size(10);
    for kind in RuntimeKind::ALL {
        g.bench_function(kind.label(), |bench| {
            bench.iter(|| black_box(run_one(&b, kind, "histogram", 2)));
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_runtimes_direct
);
criterion_main!(figures);
