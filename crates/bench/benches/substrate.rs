//! Microbenchmarks of the substrates: Conversion page operations, byte
//! merging, workspace access paths, and clock-table operations.
//!
//! The harness is a plain `main` (the workspace builds offline, with no
//! external bench framework): batched cases rebuild their input per
//! iteration and subtract nothing — the setup cost is reported alongside,
//! so compare within a group rather than across.

use std::hint::black_box;
use std::time::Instant;

use conversion::{PageBuf, PageTracker, ParallelCommit, Segment};
use det_clock::{ClockTable, OrderPolicy};
use dmt_api::{Tid, PAGE_SIZE};

/// Runs `f` repeatedly for ~20ms after one warmup call and reports ns/iter.
fn measure<F: FnMut()>(group: &str, name: &str, mut f: F) {
    f(); // warmup
    let budget = std::time::Duration::from_millis(20);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{group}/{name}: {per:.0} ns/iter ({iters} iters)");
}

/// Batched variant: `setup` builds fresh input, `run` consumes it; only the
/// whole setup+run pair is timed (setup dominates for tiny `run`s — compare
/// within the group).
fn measure_batched<S, T, R: FnMut(T)>(group: &str, name: &str, mut setup: S, mut run: R)
where
    S: FnMut() -> T,
{
    measure(group, name, || {
        let input = setup();
        run(input);
    });
}

fn bench_fault_and_access() {
    let seg = Segment::new(64, 4);
    measure_batched(
        "workspace",
        "cow_fault",
        || seg.new_workspace(Tid(0)).0,
        |mut ws| {
            ws.write_bytes(0, black_box(&[1u8]));
        },
    );

    let seg = Segment::new(64, 4);
    let (mut ws, _) = seg.new_workspace(Tid(0));
    ws.write_bytes(0, &[1]); // pre-fault page 0
    measure("workspace_access", "ld_u64", || {
        black_box(ws.ld_u64(black_box(128)));
    });
    measure("workspace_access", "st_u64_dirty_page", || {
        ws.st_u64(black_box(128), black_box(7));
    });
}

fn bench_merge() {
    let t = PageTracker::new();
    let twin = PageBuf::zeroed(&t);
    let mut work = PageBuf::duplicate(&twin);
    for i in (0..PAGE_SIZE).step_by(64) {
        work.bytes_mut()[i] = 1;
    }
    let latest = PageBuf::duplicate(&twin);
    let mut out = Box::new(PageBuf::duplicate(&twin));
    measure("byte_merge", "merge_into_sparse", || {
        conversion::merge::merge_into(
            black_box(twin.bytes()),
            black_box(work.bytes()),
            black_box(latest.bytes()),
            out.bytes_mut(),
        );
    });
}

fn bench_commit_update() {
    for pages in [1usize, 16, 64] {
        measure_batched(
            "commit",
            &format!("commit_{pages}_pages"),
            || {
                let seg = Segment::new(pages + 1, 2);
                let (mut ws, _) = seg.new_workspace(Tid(0));
                for p in 0..pages {
                    ws.write_bytes(p * PAGE_SIZE, &[p as u8 + 1]);
                }
                (seg, ws)
            },
            |(seg, mut ws)| {
                black_box(seg.commit(&mut ws, None));
            },
        );
    }
    measure_batched(
        "commit",
        "update_64_pages",
        || {
            let seg = Segment::new(65, 2);
            let (mut w0, _) = seg.new_workspace(Tid(0));
            let (w1, _) = seg.new_workspace(Tid(1));
            for p in 0..64 {
                w0.write_bytes(p * PAGE_SIZE, &[9]);
            }
            seg.commit(&mut w0, None);
            (seg, w1)
        },
        |(seg, mut w1)| {
            black_box(seg.update(&mut w1));
        },
    );
}

fn bench_parallel_commit() {
    measure_batched(
        "parallel_commit",
        "two_phase_4x16_pages",
        || {
            let seg = Segment::new(65, 8);
            let wss: Vec<_> = (0..4)
                .map(|t| {
                    let (mut ws, _) = seg.new_workspace(Tid(t));
                    for p in 0..16usize {
                        ws.write_bytes((p * 4 + t as usize) * PAGE_SIZE, &[t as u8 + 1]);
                    }
                    ws
                })
                .collect();
            (seg, wss)
        },
        |(seg, mut wss)| {
            let pc = ParallelCommit::new();
            for ws in wss.iter_mut() {
                pc.register(&seg, ws, None);
            }
            pc.seal(&seg);
            for i in 0..4 {
                pc.merge_for(i);
            }
            black_box(pc.install(&seg));
        },
    );
}

fn bench_clock_table() {
    let mut t = ClockTable::new(OrderPolicy::InstructionCount, 16);
    for i in 0..16 {
        t.register(Tid(i), 0, 0);
    }
    for i in 0..15 {
        t.publish(Tid(i), 1_000 + i as u64, 0);
    }
    t.arrive_sync(Tid(15), 500, 0);
    measure("clock_table", "eligible_16_threads", || {
        black_box(t.eligible(Tid(15)));
    });

    let mut t = ClockTable::new(OrderPolicy::InstructionCount, 16);
    for i in 0..16 {
        t.register(Tid(i), 0, 0);
    }
    t.arrive_sync(Tid(15), 500, 0);
    let mut clock = 0;
    measure("clock_table", "publish_and_crossing", || {
        clock += 10;
        t.publish(Tid(0), clock, clock);
        black_box(t.crossing_v(Tid(15), 500));
    });
}

fn main() {
    bench_fault_and_access();
    bench_merge();
    bench_commit_update();
    bench_parallel_commit();
    bench_clock_table();
}
