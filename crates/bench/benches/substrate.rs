//! Microbenchmarks of the substrates: Conversion page operations, byte
//! merging, workspace access paths, and clock-table operations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use conversion::{PageBuf, PageTracker, ParallelCommit, Segment};
use det_clock::{ClockTable, OrderPolicy};
use dmt_api::{Tid, PAGE_SIZE};

fn bench_fault_and_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("workspace");
    g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    g.bench_function("cow_fault", |b| {
        let seg = Segment::new(64, 4);
        b.iter_batched(
            || seg.new_workspace(Tid(0)).0,
            |mut ws| {
                ws.write_bytes(0, black_box(&[1u8]));
                ws
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("workspace_access");
    g.throughput(Throughput::Bytes(8));
    let seg = Segment::new(64, 4);
    let (mut ws, _) = seg.new_workspace(Tid(0));
    ws.write_bytes(0, &[1]); // pre-fault page 0
    g.bench_function("ld_u64", |b| {
        b.iter(|| black_box(ws.ld_u64(black_box(128))));
    });
    g.bench_function("st_u64_dirty_page", |b| {
        b.iter(|| ws.st_u64(black_box(128), black_box(7)));
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("byte_merge");
    g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    let t = PageTracker::new();
    let twin = PageBuf::zeroed(&t);
    let mut work = PageBuf::duplicate(&twin);
    for i in (0..PAGE_SIZE).step_by(64) {
        work.bytes_mut()[i] = 1;
    }
    let latest = PageBuf::duplicate(&twin);
    g.bench_function("merge_into_sparse", |b| {
        let mut out = Box::new(PageBuf::duplicate(&twin));
        b.iter(|| {
            conversion::merge::merge_into(
                black_box(twin.bytes()),
                black_box(work.bytes()),
                black_box(latest.bytes()),
                out.bytes_mut(),
            )
        });
    });
    g.finish();
}

fn bench_commit_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit");
    for pages in [1usize, 16, 64] {
        g.bench_function(format!("commit_{pages}_pages"), |b| {
            b.iter_batched(
                || {
                    let seg = Segment::new(pages + 1, 2);
                    let (mut ws, _) = seg.new_workspace(Tid(0));
                    for p in 0..pages {
                        ws.write_bytes(p * PAGE_SIZE, &[p as u8 + 1]);
                    }
                    (seg, ws)
                },
                |(seg, mut ws)| {
                    black_box(seg.commit(&mut ws, None));
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.bench_function("update_64_pages", |b| {
        b.iter_batched(
            || {
                let seg = Segment::new(65, 2);
                let (mut w0, _) = seg.new_workspace(Tid(0));
                let (w1, _) = seg.new_workspace(Tid(1));
                for p in 0..64 {
                    w0.write_bytes(p * PAGE_SIZE, &[9]);
                }
                seg.commit(&mut w0, None);
                (seg, w1)
            },
            |(seg, mut w1)| {
                black_box(seg.update(&mut w1));
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_parallel_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_commit");
    g.bench_function("two_phase_4x16_pages", |b| {
        b.iter_batched(
            || {
                let seg = Segment::new(65, 8);
                let wss: Vec<_> = (0..4)
                    .map(|t| {
                        let (mut ws, _) = seg.new_workspace(Tid(t));
                        for p in 0..16usize {
                            ws.write_bytes((p * 4 + t as usize) * PAGE_SIZE, &[t as u8 + 1]);
                        }
                        ws
                    })
                    .collect();
                (seg, wss)
            },
            |(seg, mut wss)| {
                let pc = ParallelCommit::new();
                for ws in wss.iter_mut() {
                    pc.register(&seg, ws, None);
                }
                pc.seal(&seg);
                for i in 0..4 {
                    pc.merge_for(i);
                }
                black_box(pc.install(&seg));
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_clock_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_table");
    g.bench_function("eligible_16_threads", |b| {
        let mut t = ClockTable::new(OrderPolicy::InstructionCount, 16);
        for i in 0..16 {
            t.register(Tid(i), 0, 0);
        }
        for i in 0..15 {
            t.publish(Tid(i), 1_000 + i as u64, 0);
        }
        t.arrive_sync(Tid(15), 500, 0);
        b.iter(|| black_box(t.eligible(Tid(15))));
    });
    g.bench_function("publish_and_crossing", |b| {
        let mut t = ClockTable::new(OrderPolicy::InstructionCount, 16);
        for i in 0..16 {
            t.register(Tid(i), 0, 0);
        }
        t.arrive_sync(Tid(15), 500, 0);
        let mut clock = 0;
        b.iter(|| {
            clock += 10;
            t.publish(Tid(0), clock, clock);
            black_box(t.crossing_v(Tid(15), 500))
        });
    });
    g.finish();
}

criterion_group!(
    substrate,
    bench_fault_and_access,
    bench_merge,
    bench_commit_update,
    bench_parallel_commit,
    bench_clock_table
);
criterion_main!(substrate);
