//! Unit-level behaviour of the pthreads baseline: real concurrency,
//! correct synchronization semantics, plausible virtual-time accounting.

use dmt_api::{CommonConfig, CostModel, MemExt, Runtime, RuntimeMemExt, Tid};
use dmt_baselines::PthreadsRuntime;

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

#[test]
fn memory_round_trips_all_access_widths() {
    let mut rt = PthreadsRuntime::new(cfg());
    rt.init_u64(0, 0x1122_3344_5566_7788);
    rt.run(Box::new(|ctx| {
        assert_eq!(ctx.ld_u64(0), 0x1122_3344_5566_7788);
        // Unaligned byte-level access over word boundaries.
        ctx.write_bytes(6, &[0xaa, 0xbb, 0xcc, 0xdd]);
        let mut b = [0u8; 4];
        ctx.read_bytes(6, &mut b);
        assert_eq!(b, [0xaa, 0xbb, 0xcc, 0xdd]);
        // Unaligned u64.
        ctx.st_u64(13, 0xfeed_face_dead_beef);
        assert_eq!(ctx.ld_u64(13), 0xfeed_face_dead_beef);
        ctx.st_f64(64, 3.25);
        assert_eq!(ctx.ld_f64(64), 3.25);
    }));
}

#[test]
fn barrier_synchronizes_for_real() {
    let mut rt = PthreadsRuntime::new(cfg());
    let b = rt.create_barrier(4);
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3usize)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    c.atomic_fetch_add_u64(0, 1);
                    c.barrier_wait(b);
                    // Everyone's pre-barrier increment must be visible.
                    let v = c.ld_u64(0);
                    c.st_u64(64 + 8 * i, v);
                }))
            })
            .collect();
        ctx.atomic_fetch_add_u64(0, 1);
        ctx.barrier_wait(b);
        for k in kids {
            ctx.join(k);
        }
    }));
    for i in 0..3usize {
        assert_eq!(rt.final_u64(64 + 8 * i), 4);
    }
}

#[test]
fn condvar_handoff_works() {
    let mut rt = PthreadsRuntime::new(cfg());
    let m = rt.create_mutex();
    let c = rt.create_cond();
    rt.run(Box::new(move |ctx| {
        let consumer = ctx.spawn(Box::new(move |t| {
            t.mutex_lock(m);
            while t.ld_u64(0) == 0 {
                t.cond_wait(c, m);
            }
            let v = t.ld_u64(0);
            t.mutex_unlock(m);
            t.st_u64(8, v + 1);
        }));
        ctx.mutex_lock(m);
        ctx.st_u64(0, 10);
        ctx.cond_signal(c);
        ctx.mutex_unlock(m);
        ctx.join(consumer);
    }));
    assert_eq!(rt.final_u64(8), 11);
}

#[test]
fn join_chains_virtual_time() {
    let mut rt = PthreadsRuntime::new(cfg());
    let report = rt.run(Box::new(|ctx| {
        let t = ctx.spawn(Box::new(|c| c.tick(1_000_000)));
        ctx.tick(10);
        ctx.join(t);
    }));
    // The run's critical path includes the child's million cycles.
    assert!(report.virtual_cycles >= 1_000_000);
}

#[test]
fn virtual_time_reflects_parallel_slack() {
    // Two independent children: critical path ≈ max, not sum.
    let mut rt = PthreadsRuntime::new(cfg());
    let report = rt.run(Box::new(|ctx| {
        let a = ctx.spawn(Box::new(|c| c.tick(1_000_000)));
        let b = ctx.spawn(Box::new(|c| c.tick(900_000)));
        ctx.join(a);
        ctx.join(b);
    }));
    assert!(report.virtual_cycles >= 1_000_000);
    assert!(
        report.virtual_cycles < 1_500_000,
        "independent work must overlap in virtual time, got {}",
        report.virtual_cycles
    );
}

#[test]
fn unjoined_threads_are_still_collected() {
    let mut rt = PthreadsRuntime::new(cfg());
    let report = rt.run(Box::new(|ctx| {
        // Fire-and-forget: run() must still wait for it.
        ctx.spawn(Box::new(|c| {
            c.tick(50_000);
            c.st_u64(0, 7);
        }));
    }));
    assert_eq!(rt.final_u64(0), 7);
    assert_eq!(report.threads, 2);
    assert_eq!(report.per_thread.len(), 2);
}

#[test]
#[should_panic(expected = "not locked")]
fn unlocking_free_mutex_panics() {
    let mut rt = PthreadsRuntime::new(cfg());
    let m = rt.create_mutex();
    rt.run(Box::new(move |ctx| ctx.mutex_unlock(m)));
}
