//! Behavioural tests for the baseline runtimes: pthreads (nondeterministic)
//! and DThreads (synchronous deterministic), plus cross-runtime agreement.

use dmt_api::{CommonConfig, CostModel, MemExt, Runtime, RuntimeMemExt, Tid};
use dmt_baselines::{make_runtime, DThreadsRuntime, PthreadsRuntime, RuntimeKind};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 64,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// A race-free reduction program usable under every runtime.
fn reduction_program(rt: &mut dyn Runtime, threads: u64, iters: u64) -> u64 {
    let m = rt.create_mutex();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..threads)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for j in 0..iters {
                        c.tick(40);
                        c.mutex_lock(m);
                        let v = c.ld_u64(0);
                        c.st_u64(0, v + i * 1000 + j);
                        c.mutex_unlock(m);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    rt.final_u64(0)
}

fn expected(threads: u64, iters: u64) -> u64 {
    (0..threads)
        .flat_map(|i| (0..iters).map(move |j| i * 1000 + j))
        .sum()
}

#[test]
fn pthreads_runs_reduction_correctly() {
    let mut rt = PthreadsRuntime::new(cfg());
    assert_eq!(reduction_program(&mut rt, 4, 10), expected(4, 10));
}

#[test]
fn dthreads_runs_reduction_correctly() {
    let mut rt = DThreadsRuntime::new(cfg());
    assert_eq!(reduction_program(&mut rt, 4, 10), expected(4, 10));
}

#[test]
fn all_five_runtimes_agree_on_race_free_output() {
    for kind in RuntimeKind::ALL {
        let mut rt = make_runtime(kind, cfg());
        assert_eq!(
            reduction_program(rt.as_mut(), 3, 8),
            expected(3, 8),
            "runtime {}",
            kind.label()
        );
    }
}

#[test]
fn dthreads_is_deterministic_including_virtual_time() {
    let run = || {
        let mut rt = DThreadsRuntime::new(cfg());
        let m = rt.create_mutex();
        let r = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..3)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for j in 0..6u64 {
                            // Racy write plus locked work.
                            c.st_u64(128 + 8 * (i as usize % 2), i * 7 + j);
                            c.tick(100 * (i + 1));
                            c.mutex_lock(m);
                            c.fetch_add_u64(0, 1);
                            c.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        (r.virtual_cycles, r.commit_log_hash, rt.final_hash(0, 4096))
    };
    assert_eq!(run(), run());
}

#[test]
fn dthreads_barrier_and_condvar_work() {
    let mut rt = DThreadsRuntime::new(cfg());
    let b = rt.create_barrier(3);
    let m = rt.create_mutex();
    let c = rt.create_cond();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (1..3)
            .map(|i| {
                ctx.spawn(Box::new(move |t| {
                    t.st_u64(i * 8, i as u64);
                    t.barrier_wait(b);
                    let sum = t.ld_u64(0) + t.ld_u64(8) + t.ld_u64(16);
                    t.st_u64(64 + i * 8, sum);
                    // Condvar: wait for the main thread's flag.
                    t.mutex_lock(m);
                    while t.ld_u64(256) == 0 {
                        t.cond_wait(c, m);
                    }
                    t.mutex_unlock(m);
                    t.st_u64(512 + i * 8, 1);
                }))
            })
            .collect();
        ctx.st_u64(0, 10);
        ctx.barrier_wait(b);
        ctx.tick(10_000);
        ctx.mutex_lock(m);
        ctx.st_u64(256, 1);
        ctx.cond_broadcast(c);
        ctx.mutex_unlock(m);
        for k in kids {
            ctx.join(k);
        }
    }));
    assert_eq!(rt.final_u64(64 + 8), 13);
    assert_eq!(rt.final_u64(64 + 16), 13);
    assert_eq!(rt.final_u64(512 + 8), 1);
    assert_eq!(rt.final_u64(512 + 16), 1);
}

/// The Figure 1b pathology: a thread that rarely synchronizes makes
/// frequently synchronizing threads wait under DThreads' rendezvous.
/// Consequence-IC does not suffer this.
#[test]
fn dthreads_shows_sync_rate_mismatch_penalty() {
    let program = |rt: &mut dyn Runtime| {
        let m = rt.create_mutex();
        let r = rt.run(Box::new(move |ctx| {
            // Slow thread: one long chunk, then a single sync op.
            let slow = ctx.spawn(Box::new(move |c| {
                c.tick(2_000_000);
                c.mutex_lock(m);
                c.mutex_unlock(m);
            }));
            // Fast thread: many short chunks with sync ops.
            let fast = ctx.spawn(Box::new(move |c| {
                for _ in 0..50 {
                    c.tick(1_000);
                    c.mutex_lock(m);
                    c.mutex_unlock(m);
                }
            }));
            ctx.join(slow);
            ctx.join(fast);
        }));
        r.virtual_cycles
    };
    let mut dt = DThreadsRuntime::new(cfg());
    let dt_v = program(&mut dt);
    let mut ic = make_runtime(RuntimeKind::ConsequenceIc, cfg());
    let ic_v = program(ic.as_mut());
    // Under DThreads the fast thread's 50 fences each wait for the slow
    // thread; under IC ordering the fast thread runs ahead. The paper's
    // point is exactly this gap.
    assert!(
        dt_v > ic_v,
        "expected DThreads ({dt_v}) slower than Consequence-IC ({ic_v})"
    );
}

#[test]
fn pthreads_reports_no_determinism_metadata() {
    let mut rt = PthreadsRuntime::new(cfg());
    let r = rt.run(Box::new(|ctx| {
        ctx.st_u64(0, 1);
        ctx.tick(10);
    }));
    assert_eq!(r.commit_log_hash, 0);
    assert_eq!(r.peak_pages, 0);
    assert!(!rt.is_deterministic());
    assert!(r.virtual_cycles >= 10);
}

#[test]
fn dwc_and_rr_presets_run_barrier_programs() {
    for kind in [RuntimeKind::Dwc, RuntimeKind::ConsequenceRr] {
        let mut rt = make_runtime(kind, cfg());
        let b = rt.create_barrier(2);
        rt.run(Box::new(move |ctx| {
            let k = ctx.spawn(Box::new(move |c| {
                c.st_u64(8, 2);
                c.barrier_wait(b);
                let s = c.ld_u64(0) + c.ld_u64(8);
                c.st_u64(16, s);
            }));
            ctx.st_u64(0, 1);
            ctx.barrier_wait(b);
            ctx.join(k);
        }));
        assert_eq!(rt.final_u64(16), 3, "runtime {}", kind.label());
    }
}
