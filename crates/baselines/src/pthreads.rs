//! The nondeterministic pthreads baseline.
//!
//! Real OS threads, real locks, flat shared memory. Data-raced accesses go
//! through relaxed atomics (cost-equivalent to the plain loads/stores a C
//! program would use, and sound Rust). Virtual time is accounted the same
//! way as in the deterministic runtimes — work and memory cycles plus small
//! lock/barrier costs, with `max()` chaining along wake edges — but the
//! chaining follows whatever order the OS scheduler happened to produce, so
//! both results and virtual times may vary across runs. That variability is
//! the point of the baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dmt_api::sync::{Condvar, Mutex};

use dmt_api::trace::Event;
use dmt_api::{
    Addr, BarrierId, Breakdown, CommonConfig, CondId, CostModel, Counters, Job, MutexId,
    PerturbSite, RunReport, Runtime, RwLockId, ThreadCtx, Tid,
};

/// Word-addressed shared memory. Bytes are packed little-endian into
/// relaxed `AtomicU64` words, so racy access is well-defined (and cheap).
struct SharedMem {
    words: Vec<AtomicU64>,
}

impl SharedMem {
    fn new(bytes: usize) -> SharedMem {
        SharedMem {
            words: (0..bytes.div_ceil(8)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn len(&self) -> usize {
        self.words.len() * 8
    }

    fn read(&self, addr: Addr, buf: &mut [u8]) {
        assert!(addr + buf.len() <= self.len(), "read out of bounds");
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i;
            let w = self.words[a / 8].load(Ordering::Relaxed);
            *b = (w >> ((a % 8) * 8)) as u8;
        }
    }

    fn write(&self, addr: Addr, data: &[u8]) {
        assert!(addr + data.len() <= self.len(), "write out of bounds");
        let mut i = 0;
        while i < data.len() {
            let a = addr + i;
            let word = a / 8;
            let off = a % 8;
            let n = (8 - off).min(data.len() - i);
            let mut mask = 0u64;
            let mut val = 0u64;
            for k in 0..n {
                mask |= 0xffu64 << ((off + k) * 8);
                val |= (data[i + k] as u64) << ((off + k) * 8);
            }
            // Read-modify-write of the containing word; racy programs get
            // racy (but memory-safe) results, exactly like pthreads.
            let old = self.words[word].load(Ordering::Relaxed);
            self.words[word].store((old & !mask) | val, Ordering::Relaxed);
            i += n;
        }
    }

    fn ld_u64(&self, addr: Addr) -> u64 {
        if addr.is_multiple_of(8) && addr + 8 <= self.len() {
            self.words[addr / 8].load(Ordering::Relaxed)
        } else {
            let mut b = [0u8; 8];
            self.read(addr, &mut b);
            u64::from_le_bytes(b)
        }
    }

    fn st_u64(&self, addr: Addr, v: u64) {
        if addr.is_multiple_of(8) && addr + 8 <= self.len() {
            self.words[addr / 8].store(v, Ordering::Relaxed);
        } else {
            self.write(addr, &v.to_le_bytes());
        }
    }

    /// Hardware atomic fetch-add; requires an aligned word.
    fn fetch_add(&self, addr: Addr, v: u64) -> u64 {
        assert_eq!(addr % 8, 0, "atomics require 8-byte alignment");
        self.words[addr / 8].fetch_add(v, Ordering::AcqRel)
    }

    /// Hardware atomic compare-and-swap; requires an aligned word.
    fn cas(&self, addr: Addr, expect: u64, new: u64) -> u64 {
        assert_eq!(addr % 8, 0, "atomics require 8-byte alignment");
        match self.words[addr / 8].compare_exchange(
            expect,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(old) | Err(old) => old,
        }
    }
}

#[derive(Default)]
struct PMutexSt {
    locked: bool,
    last_release_v: u64,
    /// Grants so far (trace tickets). The grant *order* is whatever the OS
    /// scheduler produced, which is exactly what the trace should witness:
    /// pthreads emits schedule events like the deterministic runtimes do,
    /// and its schedule hash varying across runs is the negative control.
    tickets: u64,
}

#[derive(Default)]
struct PRwSt {
    writer: bool,
    readers: u32,
    last_release_v: u64,
}

#[derive(Default)]
struct PCondSt {
    /// Waiters currently blocked.
    waiting: usize,
    /// One entry per grant: the signaling thread's virtual time, so each
    /// wake chains off its own signal rather than the max of all signals.
    grants: std::collections::VecDeque<u64>,
}

#[derive(Default)]
struct PBarrierSt {
    parties: usize,
    arrived: usize,
    gen: u64,
    max_v: u64,
    open_v: u64,
}

struct PShared {
    cfg: CommonConfig,
    mem: SharedMem,
    st: Mutex<PState>,
    cv: Condvar,
}

struct PState {
    mutexes: Vec<PMutexSt>,
    conds: Vec<PCondSt>,
    rwlocks: Vec<PRwSt>,
    barriers: Vec<PBarrierSt>,
    next_tid: u32,
    finished_v: HashMap<Tid, u64>,
    handles: HashMap<Tid, std::thread::JoinHandle<(Tid, Breakdown, Counters, u64)>>,
    reports: Vec<(Tid, Breakdown)>,
    counters: Counters,
    max_v: u64,
    live: u32,
    started: bool,
}

/// Per-thread pthreads context.
struct PCtx {
    sh: Arc<PShared>,
    tid: Tid,
    clock: u64,
    v: u64,
    bd: Breakdown,
    cnt: Counters,
    cost: CostModel,
}

impl PCtx {
    fn new(sh: Arc<PShared>, tid: Tid, v: u64) -> PCtx {
        let cost = sh.cfg.cost;
        PCtx {
            sh,
            tid,
            clock: 0,
            v,
            bd: Breakdown::default(),
            cnt: Counters::default(),
            cost,
        }
    }

    /// Fires a perturbation hook and charges its virtual-time cost.
    ///
    /// For the pthreads negative control the interesting effect is the
    /// *real* stall (taken before the state lock), which shuffles genuine
    /// OS lock-acquisition order — exactly the nondeterminism the stress
    /// harness expects this runtime to exhibit.
    #[inline]
    fn perturb_hit(&mut self, site: PerturbSite) {
        let c = self.sh.cfg.perturb.hit(site, self.tid);
        if c > 0 {
            self.v += c;
            self.bd.lib += c;
        }
    }

    fn finish(mut self) -> (Tid, Breakdown, Counters, u64) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        sh.cfg.trace.emit(Event::Exit {
            tid: self.tid,
            clock: self.clock,
        });
        st.finished_v.insert(self.tid, self.v);
        st.live -= 1;
        st.max_v = st.max_v.max(self.v);
        sh.cv.notify_all();
        (self.tid, std::mem::take(&mut self.bd), self.cnt, self.v)
    }
}

impl ThreadCtx for PCtx {
    fn tid(&self) -> Tid {
        self.tid
    }

    fn tick(&mut self, n: u64) {
        self.clock += n;
        self.v += n;
        self.bd.chunk += n;
    }

    fn vtime(&self) -> u64 {
        self.v
    }

    fn logical_clock(&self) -> u64 {
        self.clock
    }

    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.sh.mem.read(addr, buf);
        let c = self.cost.mem_access(buf.len());
        self.clock += buf.len().div_ceil(8) as u64;
        self.v += c;
        self.bd.chunk += c;
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        self.sh.mem.write(addr, data);
        let c = self.cost.mem_access(data.len());
        self.clock += data.len().div_ceil(8) as u64;
        self.v += c;
        self.bd.chunk += c;
    }

    fn ld_u64(&mut self, addr: Addr) -> u64 {
        let v = self.sh.mem.ld_u64(addr);
        let c = self.cost.mem_access(8);
        self.clock += 1;
        self.v += c;
        self.bd.chunk += c;
        v
    }

    fn st_u64(&mut self, addr: Addr, val: u64) {
        self.sh.mem.st_u64(addr, val);
        let c = self.cost.mem_access(8);
        self.clock += 1;
        self.v += c;
        self.bd.chunk += c;
    }

    fn atomic_fetch_add_u64(&mut self, addr: Addr, v: u64) -> u64 {
        let old = self.sh.mem.fetch_add(addr, v);
        let c = self.cost.mem_access(8) + self.cost.pthread_lock / 2;
        self.clock += 1;
        self.v += c;
        self.bd.chunk += c;
        old
    }

    fn atomic_cas_u64(&mut self, addr: Addr, expect: u64, new: u64) -> u64 {
        let old = self.sh.mem.cas(addr, expect, new);
        let c = self.cost.mem_access(8) + self.cost.pthread_lock / 2;
        self.clock += 1;
        self.v += c;
        self.bd.chunk += c;
        old
    }

    fn rw_read_lock(&mut self, l: RwLockId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        let from = self.v;
        while st.rwlocks[l.index()].writer {
            sh.cv.wait(&mut st);
        }
        let rs = &mut st.rwlocks[l.index()];
        rs.readers += 1;
        sh.cfg.trace.emit(Event::RwAcquire {
            tid: self.tid,
            lock: l,
            writer: false,
        });
        self.v = self.v.max(rs.last_release_v) + self.cost.pthread_lock;
        self.bd.determ_wait += self.v - from - self.cost.pthread_lock;
        self.bd.lib += self.cost.pthread_lock;
    }

    fn rw_read_unlock(&mut self, l: RwLockId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        let rs = &mut st.rwlocks[l.index()];
        assert!(rs.readers > 0, "read-unlock with no readers");
        rs.readers -= 1;
        sh.cfg.trace.emit(Event::RwRelease {
            tid: self.tid,
            lock: l,
            writer: false,
        });
        self.v += self.cost.pthread_lock;
        self.bd.lib += self.cost.pthread_lock;
        rs.last_release_v = rs.last_release_v.max(self.v);
        sh.cv.notify_all();
    }

    fn rw_write_lock(&mut self, l: RwLockId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        let from = self.v;
        while st.rwlocks[l.index()].writer || st.rwlocks[l.index()].readers > 0 {
            sh.cv.wait(&mut st);
        }
        let rs = &mut st.rwlocks[l.index()];
        rs.writer = true;
        sh.cfg.trace.emit(Event::RwAcquire {
            tid: self.tid,
            lock: l,
            writer: true,
        });
        self.v = self.v.max(rs.last_release_v) + self.cost.pthread_lock;
        self.bd.determ_wait += self.v - from - self.cost.pthread_lock;
        self.bd.lib += self.cost.pthread_lock;
    }

    fn rw_write_unlock(&mut self, l: RwLockId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        let rs = &mut st.rwlocks[l.index()];
        assert!(rs.writer, "write-unlock without holding");
        rs.writer = false;
        sh.cfg.trace.emit(Event::RwRelease {
            tid: self.tid,
            lock: l,
            writer: true,
        });
        self.v += self.cost.pthread_lock;
        self.bd.lib += self.cost.pthread_lock;
        rs.last_release_v = rs.last_release_v.max(self.v);
        sh.cv.notify_all();
    }

    fn mutex_lock(&mut self, m: MutexId) {
        self.perturb_hit(PerturbSite::LockPath);
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        let from = self.v;
        while st.mutexes[m.index()].locked {
            sh.cv.wait(&mut st);
        }
        let ms = &mut st.mutexes[m.index()];
        ms.locked = true;
        ms.tickets += 1;
        let ticket = ms.tickets;
        sh.cfg.trace.emit(Event::MutexLock {
            tid: self.tid,
            mutex: m,
            ticket,
        });
        // Chain off whoever released last (the real acquisition order).
        self.v = self.v.max(ms.last_release_v) + self.cost.pthread_lock;
        self.bd.determ_wait += self.v - from - self.cost.pthread_lock;
        self.bd.lib += self.cost.pthread_lock;
        self.cnt.lock_acquires += 1;
    }

    fn mutex_unlock(&mut self, m: MutexId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        let ms = &mut st.mutexes[m.index()];
        assert!(ms.locked, "{} unlocking {m} that is not locked", self.tid);
        ms.locked = false;
        sh.cfg.trace.emit(Event::MutexUnlock {
            tid: self.tid,
            mutex: m,
            woke: None,
        });
        self.v += self.cost.pthread_lock;
        self.bd.lib += self.cost.pthread_lock;
        ms.last_release_v = ms.last_release_v.max(self.v);
        sh.cv.notify_all();
    }

    fn cond_wait(&mut self, c: CondId, m: MutexId) {
        self.perturb_hit(PerturbSite::LockPath);
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        // Release the mutex.
        let ms = &mut st.mutexes[m.index()];
        assert!(ms.locked, "cond_wait without holding {m}");
        ms.locked = false;
        sh.cfg.trace.emit(Event::CondWait {
            tid: self.tid,
            cond: c,
            mutex: m,
        });
        self.v += self.cost.pthread_sync;
        self.bd.lib += self.cost.pthread_sync;
        ms.last_release_v = ms.last_release_v.max(self.v);
        st.conds[c.index()].waiting += 1;
        self.cnt.cond_waits += 1;
        sh.cv.notify_all();
        let from = self.v;
        loop {
            if let Some(gv) = st.conds[c.index()].grants.pop_front() {
                st.conds[c.index()].waiting -= 1;
                self.v = self.v.max(gv);
                break;
            }
            sh.cv.wait(&mut st);
        }
        // Re-acquire the mutex.
        while st.mutexes[m.index()].locked {
            sh.cv.wait(&mut st);
        }
        let ms = &mut st.mutexes[m.index()];
        ms.locked = true;
        ms.tickets += 1;
        let ticket = ms.tickets;
        sh.cfg.trace.emit(Event::MutexLock {
            tid: self.tid,
            mutex: m,
            ticket,
        });
        self.v = self.v.max(ms.last_release_v);
        self.bd.determ_wait += self.v - from;
    }

    fn cond_signal(&mut self, c: CondId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        self.v += self.cost.pthread_sync;
        self.bd.lib += self.cost.pthread_sync;
        let cs = &mut st.conds[c.index()];
        if cs.grants.len() < cs.waiting {
            cs.grants.push_back(self.v);
        }
        sh.cfg.trace.emit(Event::CondSignal {
            tid: self.tid,
            cond: c,
            woken: None,
        });
        sh.cv.notify_all();
    }

    fn cond_broadcast(&mut self, c: CondId) {
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        self.v += self.cost.pthread_sync;
        self.bd.lib += self.cost.pthread_sync;
        let cs = &mut st.conds[c.index()];
        let mut woken = 0u32;
        while cs.grants.len() < cs.waiting {
            cs.grants.push_back(self.v);
            woken += 1;
        }
        sh.cfg.trace.emit(Event::CondBroadcast {
            tid: self.tid,
            cond: c,
            woken,
        });
        sh.cv.notify_all();
    }

    fn barrier_wait(&mut self, b: BarrierId) {
        self.perturb_hit(PerturbSite::LockPath);
        let sh = Arc::clone(&self.sh);
        let mut st = sh.st.lock();
        self.v += self.cost.pthread_sync;
        self.bd.lib += self.cost.pthread_sync;
        self.cnt.barrier_waits += 1;
        let gen = st.barriers[b.index()].gen;
        {
            let bs = &mut st.barriers[b.index()];
            bs.arrived += 1;
            bs.max_v = bs.max_v.max(self.v);
            sh.cfg.trace.emit(Event::BarrierArrive {
                tid: self.tid,
                barrier: b,
                gen,
            });
            if bs.arrived == bs.parties {
                bs.open_v = bs.max_v;
                bs.gen += 1;
                bs.arrived = 0;
                bs.max_v = 0;
                sh.cfg.trace.emit(Event::BarrierOpen {
                    tid: self.tid,
                    barrier: b,
                    gen,
                    install_version: 0,
                });
            }
        }
        sh.cv.notify_all();
        let from = self.v;
        while st.barriers[b.index()].gen == gen {
            sh.cv.wait(&mut st);
        }
        self.v = self.v.max(st.barriers[b.index()].open_v);
        self.bd.barrier_wait += self.v - from;
    }

    fn spawn(&mut self, job: Job) -> Tid {
        let sh = Arc::clone(&self.sh);
        self.v += self.cost.pthread_spawn;
        self.bd.lib += self.cost.pthread_spawn;
        self.cnt.spawns += 1;
        let mut st = sh.st.lock();
        let tid = Tid(st.next_tid);
        st.next_tid += 1;
        st.live += 1;
        sh.cfg.trace.emit(Event::Spawn {
            parent: self.tid,
            child: tid,
            pooled: false,
        });
        let sh2 = Arc::clone(&self.sh);
        let v0 = self.v;
        let handle = std::thread::spawn(move || {
            let mut ctx = PCtx::new(sh2, tid, v0);
            job(&mut ctx);
            ctx.finish()
        });
        st.handles.insert(tid, handle);
        tid
    }

    fn join(&mut self, t: Tid) {
        assert_ne!(t, self.tid, "thread joining itself");
        let sh = Arc::clone(&self.sh);
        let handle = {
            let mut st = sh.st.lock();
            st.handles.remove(&t)
        };
        let from = self.v;
        if let Some(h) = handle {
            let (tid, bd, cnt, v) = h.join().expect("joined thread panicked");
            let mut st = sh.st.lock();
            st.reports.push((tid, bd));
            st.counters += cnt;
            self.v = self.v.max(v);
            sh.cfg.trace.emit(Event::Join {
                tid: self.tid,
                target: t,
            });
        } else {
            // Someone else holds/held the handle; wait for the exit record.
            let mut st = sh.st.lock();
            loop {
                if let Some(v) = st.finished_v.get(&t) {
                    self.v = self.v.max(*v);
                    break;
                }
                sh.cv.wait(&mut st);
            }
        }
        self.bd.determ_wait += self.v - from;
    }
}

/// Nondeterministic pthreads-style runtime (the normalization baseline).
pub struct PthreadsRuntime {
    sh: Arc<PShared>,
    ran: bool,
}

impl PthreadsRuntime {
    /// Creates the runtime with a zeroed heap.
    pub fn new(cfg: CommonConfig) -> PthreadsRuntime {
        let mem = SharedMem::new(cfg.heap_bytes());
        PthreadsRuntime {
            sh: Arc::new(PShared {
                cfg,
                mem,
                st: Mutex::new(PState {
                    mutexes: Vec::new(),
                    conds: Vec::new(),
                    rwlocks: Vec::new(),
                    barriers: Vec::new(),
                    next_tid: 1,
                    finished_v: HashMap::new(),
                    handles: HashMap::new(),
                    reports: Vec::new(),
                    counters: Counters::default(),
                    max_v: 0,
                    live: 0,
                    started: false,
                }),
                cv: Condvar::new(),
            }),
            ran: false,
        }
    }
}

impl Runtime for PthreadsRuntime {
    fn name(&self) -> &'static str {
        "pthreads"
    }

    fn is_deterministic(&self) -> bool {
        false
    }

    fn create_mutex(&mut self) -> MutexId {
        let mut st = self.sh.st.lock();
        assert!(!st.started, "objects must be created before run()");
        st.mutexes.push(PMutexSt::default());
        MutexId(st.mutexes.len() as u32 - 1)
    }

    fn create_cond(&mut self) -> CondId {
        let mut st = self.sh.st.lock();
        assert!(!st.started, "objects must be created before run()");
        st.conds.push(PCondSt::default());
        CondId(st.conds.len() as u32 - 1)
    }

    fn create_rwlock(&mut self) -> RwLockId {
        let mut st = self.sh.st.lock();
        assert!(!st.started, "objects must be created before run()");
        st.rwlocks.push(PRwSt::default());
        RwLockId(st.rwlocks.len() as u32 - 1)
    }

    fn create_barrier(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0, "barrier needs at least one party");
        let mut st = self.sh.st.lock();
        assert!(!st.started, "objects must be created before run()");
        st.barriers.push(PBarrierSt {
            parties,
            ..PBarrierSt::default()
        });
        BarrierId(st.barriers.len() as u32 - 1)
    }

    fn heap_len(&self) -> usize {
        self.sh.mem.len()
    }

    fn init_write(&mut self, addr: Addr, data: &[u8]) {
        self.sh.mem.write(addr, data);
    }

    fn final_read(&self, addr: Addr, buf: &mut [u8]) {
        self.sh.mem.read(addr, buf);
    }

    fn run(&mut self, main: Job) -> RunReport {
        assert!(!self.ran, "run() may only be called once");
        self.ran = true;
        let sh = Arc::clone(&self.sh);
        let start = Instant::now();
        {
            let mut st = sh.st.lock();
            st.started = true;
            st.live = 1;
        }
        let mut ctx = PCtx::new(Arc::clone(&sh), Tid::MAIN, 0);
        main(&mut ctx);
        let (tid, bd, cnt, _v) = ctx.finish();
        let mut st = sh.st.lock();
        st.reports.push((tid, bd));
        st.counters += cnt;
        while st.live > 0 {
            sh.cv.wait(&mut st);
        }
        // Collect any threads that were never joined.
        let leftover: Vec<_> = st.handles.drain().map(|(_, h)| h).collect();
        drop(st);
        for h in leftover {
            if let Ok((tid, bd, cnt, _)) = h.join() {
                let mut st = sh.st.lock();
                st.reports.push((tid, bd));
                st.counters += cnt;
            }
        }
        let mut st = sh.st.lock();
        let mut reports = std::mem::take(&mut st.reports);
        reports.sort_by_key(|(t, _)| *t);
        let mut breakdown = Breakdown::default();
        for (_, b) in &reports {
            breakdown += *b;
        }
        let threads = st.next_tid;
        RunReport {
            virtual_cycles: st.max_v,
            wall: start.elapsed(),
            breakdown,
            per_thread: reports,
            counters: st.counters,
            peak_pages: 0,
            commit_log_hash: 0,
            schedule_hash: sh.cfg.trace.schedule_hash(),
            events: sh.cfg.trace.counts(),
            threads,
            perturb_seed: sh.cfg.perturb.seed(),
            perturb_plan: sh.cfg.perturb.plan_digest(),
            panics: Vec::new(),
            fault: None,
            degraded: false,
            replay_divergence: None,
        }
    }
}
