//! The DThreads baseline: round-robin ordering with **synchronous** commits.
//!
//! DThreads (Liu et al., SOSP 2011) divides execution into parallel phases
//! separated by global rendezvous: at every synchronization operation a
//! thread waits until *all* running threads reach a synchronization point
//! (the Figure 1b waiting pathology), then the arrived threads commit and
//! perform their operations **serially in thread-id order** (the Figure 3a
//! synchronous-commit pathology), then everyone updates and the next
//! parallel phase begins. All mutexes alias a single global lock, which the
//! paper calls out as DThreads' locking model.
//!
//! Isolation reuses the [`conversion`] segment — DThreads' `mprotect`-based
//! copy-on-write and twin/diff commit are algorithmically the same
//! mechanism, differing only in trap cost, which the cost model already
//! prices via `fault`/`page_commit`.
//!
//! Blocking operations (contended lock, condition wait, barrier, join) hand
//! off deterministically: a blocked thread leaves the fence population and
//! is re-admitted by the serial operation that wakes it, so fence
//! membership — and therefore the whole execution — is a deterministic
//! function of the program.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use dmt_api::sync::{Condvar, Mutex};

use conversion::{Segment, Workspace};
use dmt_api::trace::Event;
use dmt_api::{
    Addr, BarrierId, Breakdown, CommonConfig, CondId, CostModel, Counters, Job, MutexId,
    PerturbSite, RunReport, Runtime, RwLockId, ThreadCtx, Tid,
};

#[derive(Debug, Default)]
struct DtThread {
    wake: bool,
    wake_v: u64,
    /// Version to update to on wake (recorded by the waker, so update work
    /// is a deterministic function of the serial order).
    wake_version: u64,
    arrival_v: u64,
    joiners: Vec<Tid>,
    finished: bool,
    exit_v: u64,
}

struct DtBarrier {
    parties: usize,
    waiting: Vec<Tid>,
}

struct DtInner {
    // Fence machinery.
    arrived: Vec<Tid>,
    running: u32,
    serial: bool,
    serial_order: Vec<Tid>,
    serial_idx: usize,
    chain_v: u64,
    fence_gen: u64,
    open_v: u64,
    /// Version committed when the current fence closed.
    open_version: u64,
    /// Serial ops of the current phase whose threads continue past it.
    resume_count: u32,
    // The single global lock every mutex aliases.
    lock_owner: Option<Tid>,
    lock_waiters: VecDeque<Tid>,
    /// Global-lock grants so far (trace tickets).
    lock_tickets: u64,
    conds: Vec<VecDeque<Tid>>,
    n_mutexes: u32,
    n_rwlocks: u32,
    barriers: Vec<DtBarrier>,
    threads: Vec<DtThread>,
    next_tid: u32,
    live: u32,
    handles: Vec<std::thread::JoinHandle<()>>,
    reports: Vec<(Tid, Breakdown)>,
    counters: Counters,
    max_v: u64,
    started: bool,
}

struct DtShared {
    cfg: CommonConfig,
    seg: Segment,
    inner: Mutex<DtInner>,
    cv: Condvar,
}

/// What the serial-phase operation decided for the calling thread.
enum Outcome {
    /// Proceed into the next parallel phase.
    Continue,
    /// Blocked (lock queue, condition queue, barrier, join): wait for an
    /// explicit wake instead of the fence opening.
    Block,
    /// The thread exited.
    Exit,
}

struct DtCtx {
    sh: Arc<DtShared>,
    tid: Tid,
    ws: Option<Workspace>,
    clock: u64,
    v: u64,
    bd: Breakdown,
    cnt: Counters,
    cost: CostModel,
    /// Children created but not yet admitted to the fence population;
    /// they start at this thread's next non-spawn serial turn, batching
    /// consecutive creates into one phase as real DThreads does.
    pending_children: Vec<Tid>,
}

impl DtCtx {
    fn new(sh: Arc<DtShared>, tid: Tid, ws: Workspace, v: u64) -> DtCtx {
        let cost = sh.cfg.cost;
        DtCtx {
            sh,
            tid,
            ws: Some(ws),
            clock: 0,
            v,
            bd: Breakdown::default(),
            cnt: Counters::default(),
            cost,
            pending_children: Vec::new(),
        }
    }

    fn ws(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present")
    }

    /// Fires a fault-injection site (see `dmt_api::perturb`), charging any
    /// returned cycles as library overhead. Virtual time only: fence
    /// membership is the running set and serial order is sorted by tid, so
    /// arrival timing cannot move the schedule.
    fn perturb_hit(&mut self, site: PerturbSite) {
        let c = self.sh.cfg.perturb.hit(site, self.tid);
        if c > 0 {
            self.v += c;
            self.bd.lib += c;
        }
    }

    fn charge_mem(&mut self, bytes: usize) {
        let c = self.cost.mem_access(bytes);
        self.clock += bytes.div_ceil(8) as u64;
        self.v += c;
        self.bd.chunk += c;
    }

    fn charge_faults(&mut self, faults: u64) {
        if faults > 0 {
            let fc = faults * self.cost.fault;
            self.v += fc;
            self.bd.fault += fc;
            self.cnt.faults += faults;
        }
    }

    /// Commits this thread's dirty pages; must run inside the serial phase.
    /// DThreads isolates with `mprotect()`, so every commit also pays to
    /// re-protect the thread's whole mapping — the cost Conversion's
    /// kernel support (DWC, Consequence) eliminates.
    fn commit(&mut self) {
        let sh = Arc::clone(&self.sh);
        let mapped = self.ws().num_pages() as u64;
        let cr = sh.seg.commit(self.ws(), None);
        // Commits happen at the thread's serial turn: schedule events.
        sh.cfg.trace.emit(Event::Commit {
            tid: self.tid,
            version: cr.version,
            pages: cr.pages,
            merged: cr.merged,
            page_set: cr.page_set,
        });
        let c = self.cost.commit_base
            + mapped * self.cost.page_protect
            + cr.pages as u64 * self.cost.page_commit
            + cr.merged as u64 * self.cost.page_merge;
        self.v += c;
        self.bd.commit += c;
        self.cnt.commits += 1;
        self.cnt.pages_committed += cr.pages as u64;
        self.cnt.pages_merged += cr.merged as u64;
        self.cnt.chunks += 1;
    }

    /// Pulls committed state up to a recorded version (on leaving a fence
    /// or waking). Updating to an exact version keeps the work — and thus
    /// virtual time — independent of racing later commits.
    fn update(&mut self, upto: u64) {
        let sh = Arc::clone(&self.sh);
        let ur = sh.seg.update_to(self.ws(), upto);
        // Updates run in the parallel phase, racing each other in real
        // time: auxiliary (counted, never hashed).
        sh.cfg.trace.emit_aux(Event::Update {
            tid: self.tid,
            version: ur.new_base,
            pages: ur.pages_propagated,
        });
        let u = self.cost.update_base + ur.pages_propagated * self.cost.page_update;
        self.v += u;
        self.bd.update += u;
        self.cnt.pages_propagated += ur.pages_propagated;
        // Updates race each other in real time, so how much reclaimable
        // work this particular call finds is nondeterministic — the
        // collector's work cannot be charged to this thread's virtual
        // clock (unlike Consequence, whose collector runs under the
        // token). Totals are harvested from the segment at report time.
        sh.seg.gc(self.sh.cfg.gc_budget);
    }

    /// The DThreads rendezvous: wait for all running threads, commit and
    /// act in tid order, then either continue past the fence or block.
    /// `op` runs at this thread's serial turn with the runtime lock held.
    /// Returns the spawned tid for spawn operations.
    fn fence_op(
        &mut self,
        op: impl FnOnce(&mut DtCtx, &mut DtInner) -> (Outcome, Option<Tid>),
    ) -> Option<Tid> {
        self.fence_op_ex(false, op)
    }

    fn fence_op_ex(
        &mut self,
        is_spawn: bool,
        op: impl FnOnce(&mut DtCtx, &mut DtInner) -> (Outcome, Option<Tid>),
    ) -> Option<Tid> {
        let c = self.cost.sync_op;
        self.v += c;
        self.bd.lib += c;
        // Fence-arrival delay: a straggler reaching the rendezvous late.
        // The fence cannot start until every running thread arrives, so
        // only waiting time stretches.
        self.perturb_hit(PerturbSite::Fence);
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();

        // Arrive at the fence. Late arrivals (threads woken mid-serial)
        // simply queue for the next phase.
        inner.running -= 1;
        inner.arrived.push(self.tid);
        inner.threads[self.tid.index()].arrival_v = self.v;
        Self::try_start_serial(&mut inner);
        sh.cv.notify_all();

        // Wait for my serial turn.
        let from = self.v;
        loop {
            if inner.serial && inner.serial_order.get(inner.serial_idx) == Some(&self.tid) {
                break;
            }
            if sh.cfg.perturb.spurious_wake(self.tid) {
                // Spurious wake injection: serial-turn waiters re-check the
                // turn predicate and go back to sleep.
                sh.cv.notify_all();
            }
            sh.cv.wait(&mut inner);
        }
        let my_gen = inner.fence_gen;
        self.v = self.v.max(inner.chain_v);
        self.bd.determ_wait += self.v - from;
        // The serial turn is DThreads' analog of the token grant.
        self.sh.cfg.trace.emit(Event::TokenAcquire {
            tid: self.tid,
            clock: self.clock,
        });

        // Serial work: synchronous commit, then the operation itself.
        drop(inner);
        self.commit();
        let mut inner = sh.inner.lock();
        if !is_spawn && !self.pending_children.is_empty() {
            // Admit the batched children to the fence population now, at a
            // deterministic point (this thread's serial turn).
            let ver = sh.seg.latest_id();
            for child in self.pending_children.drain(..) {
                inner.running += 1;
                sh.seg.pin(ver);
                let st = &mut inner.threads[child.index()];
                st.wake = true;
                st.wake_v = self.v;
                st.wake_version = ver;
            }
        }
        let (outcome, spawned) = op(self, &mut inner);
        if matches!(outcome, Outcome::Block) {
            self.sh.cfg.trace.emit(Event::Depart {
                tid: self.tid,
                clock: self.clock,
            });
        }
        self.sh.cfg.trace.emit(Event::TokenRelease {
            tid: self.tid,
            clock: self.clock,
        });
        inner.chain_v = inner.chain_v.max(self.v);
        inner.serial_idx += 1;
        if matches!(outcome, Outcome::Continue) {
            inner.resume_count += 1;
        }

        // Close the fence after the last serial op: re-admit the
        // continuing threads to the parallel population *before* deciding
        // whether a next phase can start, so phase membership stays
        // deterministic.
        if inner.serial_idx == inner.serial_order.len() {
            inner.serial = false;
            inner.open_v = inner.chain_v;
            inner.open_version = sh.seg.latest_id();
            // One pin per continuing thread that will update to this point.
            for _ in 0..inner.resume_count {
                sh.seg.pin(inner.open_version);
            }
            inner.fence_gen += 1;
            inner.running += inner.resume_count;
            inner.resume_count = 0;
            inner.serial_order.clear();
            Self::try_start_serial(&mut inner);
        }
        sh.cv.notify_all();

        match outcome {
            Outcome::Exit => {}
            Outcome::Continue => {
                // Wait for my phase to open, then resync memory.
                let from = self.v;
                while inner.fence_gen == my_gen {
                    sh.cv.wait(&mut inner);
                }
                self.v = self.v.max(inner.open_v);
                self.bd.determ_wait += self.v - from;
                let upto = inner.open_version;
                drop(inner);
                // Parallel-phase delay: updates race in real time anyway
                // (their events are auxiliary), and `update_to` pins the
                // exact version, so a slow updater changes nothing.
                self.perturb_hit(PerturbSite::Fence);
                self.update(upto);
                sh.seg.unpin(upto);
            }
            Outcome::Block => {
                let from = self.v;
                loop {
                    if inner.threads[self.tid.index()].wake {
                        break;
                    }
                    sh.cv.wait(&mut inner);
                }
                let st = &mut inner.threads[self.tid.index()];
                st.wake = false;
                self.v = self.v.max(st.wake_v);
                let upto = st.wake_version;
                self.bd.determ_wait += self.v - from;
                drop(inner);
                // The waker pre-counted us into `running`.
                self.update(upto);
                sh.seg.unpin(upto);
            }
        }
        spawned
    }

    /// Starts a serial phase when no thread remains in the parallel phase.
    fn try_start_serial(inner: &mut DtInner) {
        if inner.running == 0 && !inner.serial && !inner.arrived.is_empty() {
            inner.serial = true;
            let mut order = std::mem::take(&mut inner.arrived);
            order.sort_unstable();
            #[cfg(debug_assertions)]
            if std::env::var_os("CONSEQ_DEBUG").is_some() {
                eprintln!("[dthreads] fence {} order {:?}", inner.fence_gen, order);
            }
            inner.chain_v = inner.chain_v.max(
                order
                    .iter()
                    .map(|t| inner.threads[t.index()].arrival_v)
                    .max()
                    .unwrap_or(0),
            );
            inner.serial_order = order;
            inner.serial_idx = 0;
        }
    }

    /// Deterministic atomic RMW: performed at this thread's serial turn on
    /// the freshly updated state and committed immediately, so sibling
    /// atomics in the same phase observe it.
    fn atomic_rmw(&mut self, addr: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        let mut out = 0;
        let fp = &mut out;
        self.fence_op(move |me, _inner| {
            let upto = me.sh.seg.latest_id();
            me.update(upto);
            let old = me.ws().ld_u64(addr);
            me.ws().st_u64(addr, f(old));
            me.charge_mem(16);
            me.commit();
            *fp = old;
            (Outcome::Continue, None)
        });
        out
    }

    /// Acquires the single global lock every mutex (and rwlock) aliases.
    fn global_lock(&mut self) {
        self.cnt.lock_acquires += 1;
        self.fence_op(|me, inner| {
            if inner.lock_owner.is_none() && inner.lock_waiters.is_empty() {
                inner.lock_owner = Some(me.tid);
                inner.lock_tickets += 1;
                me.sh.cfg.trace.emit(Event::MutexLock {
                    tid: me.tid,
                    mutex: MutexId(0),
                    ticket: inner.lock_tickets,
                });
                (Outcome::Continue, None)
            } else {
                inner.lock_waiters.push_back(me.tid);
                me.sh.cfg.trace.emit(Event::MutexBlock {
                    tid: me.tid,
                    mutex: MutexId(0),
                });
                (Outcome::Block, None)
            }
        });
    }

    /// Releases the global lock with deterministic hand-off.
    fn global_unlock(&mut self) {
        self.fence_op(|me, inner| {
            assert_eq!(
                inner.lock_owner,
                Some(me.tid),
                "{} unlocking the global lock it does not hold",
                me.tid
            );
            // Deterministic hand-off to the earliest waiter.
            let woke = inner.lock_waiters.pop_front();
            me.sh.cfg.trace.emit(Event::MutexUnlock {
                tid: me.tid,
                mutex: MutexId(0),
                woke,
            });
            if let Some(w) = woke {
                inner.lock_owner = Some(w);
                inner.lock_tickets += 1;
                // Hand-off grant: the new owner never re-runs the lock
                // path, so its acquisition is recorded here.
                me.sh.cfg.trace.emit(Event::MutexLock {
                    tid: w,
                    mutex: MutexId(0),
                    ticket: inner.lock_tickets,
                });
                me.wake(inner, w);
            } else {
                inner.lock_owner = None;
            }
            (Outcome::Continue, None)
        });
    }

    /// Wakes `w` during a serial operation, re-admitting it to the
    /// parallel population. Caller holds the runtime lock.
    fn wake(&mut self, inner: &mut DtInner, w: Tid) {
        let wk = self.cost.wakeup;
        self.v += wk;
        self.bd.lib += wk;
        inner.threads[w.index()].wake = true;
        inner.threads[w.index()].wake_v = self.v;
        // The waker has already committed this phase; the woken thread
        // syncs exactly to the current version. Pin it so the collector
        // cannot squash the target away before the wake is consumed.
        let ver = self.sh.seg.latest_id();
        self.sh.seg.pin(ver);
        inner.threads[w.index()].wake_version = ver;
        inner.running += 1;
    }

    fn finish(mut self) {
        self.fence_op(|me, inner| {
            let joiners = std::mem::take(&mut inner.threads[me.tid.index()].joiners);
            for j in joiners {
                me.wake(inner, j);
            }
            me.sh.cfg.trace.emit(Event::Exit {
                tid: me.tid,
                clock: me.clock,
            });
            let st = &mut inner.threads[me.tid.index()];
            st.finished = true;
            st.exit_v = me.v;
            inner.live -= 1;
            inner.max_v = inner.max_v.max(me.v);
            (Outcome::Exit, None)
        });
        let sh = Arc::clone(&self.sh);
        sh.seg.detach(self.tid);
        drop(self.ws.take());
        let mut inner = sh.inner.lock();
        inner.reports.push((self.tid, self.bd));
        inner.counters += self.cnt;
        sh.cv.notify_all();
    }
}

impl ThreadCtx for DtCtx {
    fn tid(&self) -> Tid {
        self.tid
    }

    fn tick(&mut self, n: u64) {
        self.clock += n;
        self.v += n;
        self.bd.chunk += n;
    }

    fn vtime(&self) -> u64 {
        self.v
    }

    fn logical_clock(&self) -> u64 {
        self.clock
    }

    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.ws().read_bytes(addr, buf);
        self.charge_mem(buf.len());
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        let f = self.ws().write_bytes(addr, data) as u64;
        self.charge_faults(f);
        self.charge_mem(data.len());
    }

    fn ld_u64(&mut self, addr: Addr) -> u64 {
        let v = self.ws().ld_u64(addr);
        self.charge_mem(8);
        v
    }

    fn st_u64(&mut self, addr: Addr, val: u64) {
        let f = self.ws().st_u64(addr, val) as u64;
        self.charge_faults(f);
        self.charge_mem(8);
    }

    fn mutex_lock(&mut self, m: MutexId) {
        assert!(m.0 < self.sh.inner.lock().n_mutexes, "unknown mutex {m}");
        self.global_lock();
    }

    fn mutex_unlock(&mut self, m: MutexId) {
        assert!(m.0 < self.sh.inner.lock().n_mutexes, "unknown mutex {m}");
        self.global_unlock();
    }

    fn cond_wait(&mut self, c: CondId, _m: MutexId) {
        self.cnt.cond_waits += 1;
        self.fence_op(|me, inner| {
            assert_eq!(inner.lock_owner, Some(me.tid), "cond_wait without lock");
            me.sh.cfg.trace.emit(Event::CondWait {
                tid: me.tid,
                cond: c,
                mutex: MutexId(0),
            });
            let woke = inner.lock_waiters.pop_front();
            me.sh.cfg.trace.emit(Event::MutexUnlock {
                tid: me.tid,
                mutex: MutexId(0),
                woke,
            });
            if let Some(w) = woke {
                inner.lock_owner = Some(w);
                inner.lock_tickets += 1;
                me.sh.cfg.trace.emit(Event::MutexLock {
                    tid: w,
                    mutex: MutexId(0),
                    ticket: inner.lock_tickets,
                });
                me.wake(inner, w);
            } else {
                inner.lock_owner = None;
            }
            inner.conds[c.index()].push_back(me.tid);
            (Outcome::Block, None)
        });
        // Re-acquire the (global) lock on wake-up, as pthreads requires.
        self.mutex_lock(MutexId(0));
    }

    fn cond_signal(&mut self, c: CondId) {
        self.fence_op(|me, inner| {
            let woken = inner.conds[c.index()].pop_front();
            if let Some(w) = woken {
                me.wake(inner, w);
            }
            me.sh.cfg.trace.emit(Event::CondSignal {
                tid: me.tid,
                cond: c,
                woken,
            });
            (Outcome::Continue, None)
        });
    }

    fn cond_broadcast(&mut self, c: CondId) {
        self.fence_op(|me, inner| {
            let mut woken = 0u32;
            while let Some(w) = inner.conds[c.index()].pop_front() {
                me.wake(inner, w);
                woken += 1;
            }
            me.sh.cfg.trace.emit(Event::CondBroadcast {
                tid: me.tid,
                cond: c,
                woken,
            });
            (Outcome::Continue, None)
        });
    }

    fn barrier_wait(&mut self, b: BarrierId) {
        self.cnt.barrier_waits += 1;
        self.fence_op(|me, inner| {
            let gen = inner.fence_gen;
            me.sh.cfg.trace.emit(Event::BarrierArrive {
                tid: me.tid,
                barrier: b,
                gen,
            });
            let parties = inner.barriers[b.index()].parties;
            inner.barriers[b.index()].waiting.push(me.tid);
            if inner.barriers[b.index()].waiting.len() == parties {
                let woken = std::mem::take(&mut inner.barriers[b.index()].waiting);
                for w in woken {
                    if w != me.tid {
                        me.wake(inner, w);
                    }
                }
                me.sh.cfg.trace.emit(Event::BarrierOpen {
                    tid: me.tid,
                    barrier: b,
                    gen,
                    install_version: me.sh.seg.latest_id(),
                });
                (Outcome::Continue, None)
            } else {
                (Outcome::Block, None)
            }
        });
    }

    // DThreads aliases every lock to the single global lock, and an
    // exclusive lock is a legal (if slow) read-write lock.
    fn rw_read_lock(&mut self, l: RwLockId) {
        assert!(l.0 < self.sh.inner.lock().n_rwlocks, "unknown rwlock {l}");
        self.global_lock();
    }

    fn rw_read_unlock(&mut self, l: RwLockId) {
        assert!(l.0 < self.sh.inner.lock().n_rwlocks, "unknown rwlock {l}");
        self.global_unlock();
    }

    fn rw_write_lock(&mut self, l: RwLockId) {
        assert!(l.0 < self.sh.inner.lock().n_rwlocks, "unknown rwlock {l}");
        self.global_lock();
    }

    fn rw_write_unlock(&mut self, l: RwLockId) {
        assert!(l.0 < self.sh.inner.lock().n_rwlocks, "unknown rwlock {l}");
        self.global_unlock();
    }

    fn atomic_fetch_add_u64(&mut self, addr: Addr, v: u64) -> u64 {
        self.atomic_rmw(addr, |old| old.wrapping_add(v))
    }

    fn atomic_cas_u64(&mut self, addr: Addr, expect: u64, new: u64) -> u64 {
        self.atomic_rmw(addr, |old| if old == expect { new } else { old })
    }

    fn spawn(&mut self, job: Job) -> Tid {
        self.cnt.spawns += 1;
        let mut job = Some(job);
        let spawned = self.fence_op_ex(true, move |me, inner| {
            assert!(
                (inner.next_tid as usize) < me.sh.cfg.max_threads,
                "thread limit exceeded"
            );
            let child = Tid(inner.next_tid);
            inner.next_tid += 1;
            inner.threads.push(DtThread::default());
            inner.live += 1;
            me.sh.cfg.trace.emit(Event::Spawn {
                parent: me.tid,
                child,
                pooled: false,
            });
            // The child is NOT yet part of the fence population: it starts
            // at this thread's next non-spawn serial turn, so back-to-back
            // creates batch into one phase instead of each waiting a full
            // rendezvous behind already-started workers.
            me.pending_children.push(child);
            // Fork cost: snapshot the page table for the child.
            let (ws, mapped) = me.sh.seg.new_workspace(child);
            let c = me.cost.spawn_base + mapped as u64 * me.cost.page_map;
            me.v += c;
            me.bd.lib += c;
            let sh2 = Arc::clone(&me.sh);
            let job = job.take().expect("spawn job");
            let handle = std::thread::spawn(move || {
                // Wait for admission to the fence population.
                let (v0, upto) = {
                    let mut inner = sh2.inner.lock();
                    loop {
                        if inner.threads[child.index()].wake {
                            break;
                        }
                        sh2.cv.wait(&mut inner);
                    }
                    let st = &mut inner.threads[child.index()];
                    st.wake = false;
                    (st.wake_v, st.wake_version)
                };
                let mut ctx = DtCtx::new(sh2, child, ws, v0);
                ctx.update(upto);
                ctx.sh.seg.unpin(upto);
                job(&mut ctx);
                ctx.finish();
            });
            inner.handles.push(handle);
            (Outcome::Continue, Some(child))
        });
        spawned.expect("spawn returns a tid")
    }

    fn join(&mut self, t: Tid) {
        assert_ne!(t, self.tid, "thread joining itself");
        self.fence_op(|me, inner| {
            if inner.threads[t.index()].finished {
                me.v = me.v.max(inner.threads[t.index()].exit_v);
                me.sh.cfg.trace.emit(Event::Join {
                    tid: me.tid,
                    target: t,
                });
                (Outcome::Continue, None)
            } else {
                inner.threads[t.index()].joiners.push(me.tid);
                (Outcome::Block, None)
            }
        });
    }
}

/// The DThreads runtime (round robin + synchronous fence commits + one
/// global lock).
pub struct DThreadsRuntime {
    sh: Arc<DtShared>,
    ran: bool,
}

impl DThreadsRuntime {
    /// Creates the runtime with a zeroed versioned heap.
    pub fn new(cfg: CommonConfig) -> DThreadsRuntime {
        let mut seg = Segment::new(cfg.heap_pages, cfg.max_threads);
        seg.set_perturb(cfg.perturb.clone());
        DThreadsRuntime {
            sh: Arc::new(DtShared {
                inner: Mutex::new(DtInner {
                    arrived: Vec::new(),
                    running: 0,
                    serial: false,
                    serial_order: Vec::new(),
                    serial_idx: 0,
                    chain_v: 0,
                    fence_gen: 0,
                    open_v: 0,
                    open_version: 0,
                    resume_count: 0,
                    lock_owner: None,
                    lock_waiters: VecDeque::new(),
                    lock_tickets: 0,
                    conds: Vec::new(),
                    n_mutexes: 0,
                    n_rwlocks: 0,
                    barriers: Vec::new(),
                    threads: Vec::new(),
                    next_tid: 0,
                    live: 0,
                    handles: Vec::new(),
                    reports: Vec::new(),
                    counters: Counters::default(),
                    max_v: 0,
                    started: false,
                }),
                cv: Condvar::new(),
                cfg,
                seg,
            }),
            ran: false,
        }
    }
}

impl Runtime for DThreadsRuntime {
    fn name(&self) -> &'static str {
        "dthreads"
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn create_mutex(&mut self) -> MutexId {
        let mut inner = self.sh.inner.lock();
        assert!(!inner.started, "objects must be created before run()");
        inner.n_mutexes += 1;
        MutexId(inner.n_mutexes - 1)
    }

    fn create_cond(&mut self) -> CondId {
        let mut inner = self.sh.inner.lock();
        assert!(!inner.started, "objects must be created before run()");
        inner.conds.push(VecDeque::new());
        CondId(inner.conds.len() as u32 - 1)
    }

    fn create_rwlock(&mut self) -> RwLockId {
        let mut inner = self.sh.inner.lock();
        assert!(!inner.started, "objects must be created before run()");
        inner.n_rwlocks += 1;
        RwLockId(inner.n_rwlocks - 1)
    }

    fn create_barrier(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0, "barrier needs at least one party");
        let mut inner = self.sh.inner.lock();
        assert!(!inner.started, "objects must be created before run()");
        inner.barriers.push(DtBarrier {
            parties,
            waiting: Vec::new(),
        });
        BarrierId(inner.barriers.len() as u32 - 1)
    }

    fn heap_len(&self) -> usize {
        self.sh.seg.len()
    }

    fn init_write(&mut self, addr: Addr, data: &[u8]) {
        let inner = self.sh.inner.lock();
        assert!(!inner.started, "init_write after run()");
        drop(inner);
        self.sh.seg.init_write(addr, data);
    }

    fn final_read(&self, addr: Addr, buf: &mut [u8]) {
        self.sh.seg.read_latest(addr, buf);
    }

    fn run(&mut self, main: Job) -> RunReport {
        assert!(!self.ran, "run() may only be called once");
        self.ran = true;
        let sh = Arc::clone(&self.sh);
        let start = Instant::now();
        {
            let mut inner = sh.inner.lock();
            inner.started = true;
            inner.next_tid = 1;
            inner.live = 1;
            inner.running = 1;
            inner.threads.push(DtThread::default());
        }
        let (ws, _) = sh.seg.new_workspace(Tid::MAIN);
        let mut ctx = DtCtx::new(Arc::clone(&sh), Tid::MAIN, ws, 0);
        main(&mut ctx);
        ctx.finish();

        let (reports, counters, max_v, threads) = {
            let mut inner = sh.inner.lock();
            while inner.live > 0 {
                sh.cv.wait(&mut inner);
            }
            let handles = std::mem::take(&mut inner.handles);
            drop(inner);
            for h in handles {
                let _ = h.join();
            }
            let mut inner = sh.inner.lock();
            let mut reports = std::mem::take(&mut inner.reports);
            reports.sort_by_key(|(t, _)| *t);
            (reports, inner.counters, inner.max_v, inner.next_tid)
        };

        let mut breakdown = Breakdown::default();
        for (_, b) in &reports {
            breakdown += *b;
        }
        let mut counters = counters;
        let (gc_dropped, gc_squashed) = sh.seg.gc_totals();
        counters.gc_versions_dropped = gc_dropped;
        counters.gc_versions_squashed = gc_squashed;
        counters.page_pool_hits = sh.seg.tracker().pool_hits();
        RunReport {
            virtual_cycles: max_v,
            wall: start.elapsed(),
            breakdown,
            per_thread: reports,
            counters,
            peak_pages: sh.seg.tracker().peak(),
            commit_log_hash: sh.seg.log_hash(),
            schedule_hash: sh.cfg.trace.schedule_hash(),
            events: sh.cfg.trace.counts(),
            threads,
            perturb_seed: sh.cfg.perturb.seed(),
            perturb_plan: sh.cfg.perturb.plan_digest(),
            panics: Vec::new(),
            fault: None,
            degraded: false,
            replay_divergence: None,
        }
    }
}
