//! Baseline runtimes for the Consequence evaluation.
//!
//! The paper (Figure 10–12) compares Consequence-IC against:
//!
//! * **pthreads** — the nondeterministic baseline every result is
//!   normalized to ([`PthreadsRuntime`]);
//! * **DThreads** — round-robin ordering, *synchronous* commits (all
//!   threads rendezvous at every synchronization point and commit
//!   serially), `mprotect`-style isolation and a single global lock
//!   ([`DThreadsRuntime`]);
//! * **DWC** — DThreads-with-Conversion: round-robin ordering but
//!   asynchronous commits (a [`consequence::ConsequenceRuntime`] preset);
//! * **Consequence-RR** — Consequence with round-robin ordering (another
//!   preset).
//!
//! [`RuntimeKind`] and [`make_runtime`] give harnesses one switch for all
//! five systems.

pub mod dthreads;
pub mod pthreads;

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, Runtime};

pub use dthreads::DThreadsRuntime;
pub use pthreads::PthreadsRuntime;

/// The five runtimes evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Nondeterministic pthreads.
    Pthreads,
    /// DThreads: round robin + synchronous commits + single global lock.
    DThreads,
    /// DThreads-with-Conversion: round robin + asynchronous commits.
    Dwc,
    /// Consequence with round-robin ordering.
    ConsequenceRr,
    /// Consequence with instruction-count (GMIC) ordering — the paper's
    /// headline system.
    ConsequenceIc,
}

impl RuntimeKind {
    /// All five, in the paper's presentation order.
    pub const ALL: [RuntimeKind; 5] = [
        RuntimeKind::Pthreads,
        RuntimeKind::DThreads,
        RuntimeKind::Dwc,
        RuntimeKind::ConsequenceRr,
        RuntimeKind::ConsequenceIc,
    ];

    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Pthreads => "pthreads",
            RuntimeKind::DThreads => "dthreads",
            RuntimeKind::Dwc => "dwc",
            RuntimeKind::ConsequenceRr => "consequence-rr",
            RuntimeKind::ConsequenceIc => "consequence-ic",
        }
    }
}

/// Builds a runtime of the given kind.
pub fn make_runtime(kind: RuntimeKind, cfg: CommonConfig) -> Box<dyn Runtime> {
    match kind {
        RuntimeKind::Pthreads => Box::new(PthreadsRuntime::new(cfg)),
        RuntimeKind::DThreads => Box::new(DThreadsRuntime::new(cfg)),
        RuntimeKind::Dwc => Box::new(ConsequenceRuntime::new(cfg, Options::dwc())),
        RuntimeKind::ConsequenceRr => {
            Box::new(ConsequenceRuntime::new(cfg, Options::consequence_rr()))
        }
        RuntimeKind::ConsequenceIc => {
            Box::new(ConsequenceRuntime::new(cfg, Options::consequence_ic()))
        }
    }
}

/// Builds a Consequence-IC runtime with custom options (ablations, Fig 13/14).
pub fn make_consequence(cfg: CommonConfig, opts: Options) -> Box<dyn Runtime> {
    Box::new(ConsequenceRuntime::new(cfg, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all_kinds() {
        for kind in RuntimeKind::ALL {
            let rt = make_runtime(kind, CommonConfig::default());
            assert_eq!(rt.name(), kind.label());
            assert_eq!(rt.is_deterministic(), kind != RuntimeKind::Pthreads);
        }
    }
}
