//! Behavioural tests for the Consequence runtime: determinism, mutual
//! exclusion, condition variables, barriers, thread lifecycle, coarsening
//! and the ad-hoc chunk limit.

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{
    CommonConfig, CostModel, Job, MemExt, RunReport, Runtime, RuntimeMemExt, ThreadCtx, Tid,
};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 64,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn run_with(opts: Options, main: impl Fn() -> Job) -> (RunReport, ConsequenceRuntime) {
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    let r = rt.run(main());
    (r, rt)
}

#[test]
fn single_thread_read_write() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    rt.init_u64(8, 5);
    let report = rt.run(Box::new(|ctx| {
        let v = ctx.ld_u64(8);
        ctx.st_u64(16, v * 3);
        ctx.tick(100);
    }));
    assert_eq!(rt.final_u64(16), 15);
    assert!(report.virtual_cycles >= 100);
    assert_eq!(report.threads, 1);
    assert_eq!(report.counters.faults, 1);
}

#[test]
fn spawn_join_propagates_memory() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let report = rt.run(Box::new(|ctx| {
        let t = ctx.spawn(Box::new(|c| {
            c.tick(50);
            c.st_u64(0, 7);
        }));
        assert_eq!(t, Tid(1));
        ctx.join(t);
        let v = ctx.ld_u64(0);
        ctx.st_u64(8, v + 1);
    }));
    assert_eq!(rt.final_u64(0), 7);
    assert_eq!(rt.final_u64(8), 8);
    assert_eq!(report.threads, 2);
    assert_eq!(report.counters.spawns, 1);
}

/// Two threads increment a shared counter under a mutex; the result must be
/// exact (mutual exclusion) on every run.
#[test]
fn mutex_provides_mutual_exclusion() {
    for _ in 0..3 {
        let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
        let m = rt.create_mutex();
        let report = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4)
                .map(|_| {
                    ctx.spawn(Box::new(move |c| {
                        for _ in 0..25 {
                            c.mutex_lock(m);
                            let v = c.ld_u64(0);
                            c.tick(20);
                            c.st_u64(0, v + 1);
                            c.mutex_unlock(m);
                            c.tick(100);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        assert_eq!(rt.final_u64(0), 100);
        assert!(report.counters.lock_acquires >= 100);
    }
}

/// A racy (unsynchronized) increment loses updates, but must lose them
/// DETERMINISTICALLY: same final value and same commit log on every run.
#[test]
fn racy_increments_are_deterministic() {
    let run = || {
        let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
        let m = rt.create_mutex();
        let report = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for j in 0..10 {
                            // Unsynchronized read-modify-write on address 0.
                            let v = c.ld_u64(0);
                            c.tick((i as u64 + 1) * 13 + j);
                            c.st_u64(0, v + 1);
                            // Periodic sync op to force commits.
                            c.mutex_lock(m);
                            c.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        (rt.final_u64(0), report.commit_log_hash)
    };
    let a = run();
    let b = run();
    let c = run();
    assert_eq!(a, b);
    assert_eq!(b, c);
}

/// Virtual time must also be deterministic when adaptive overflow
/// notification is disabled (fixed publication points).
#[test]
fn virtual_time_is_deterministic_with_fixed_overflow() {
    let opts = || Options::consequence_ic().without("adaptive_overflow");
    let run = || {
        let (r, rt) = run_with(opts(), || {
            Box::new(|ctx: &mut dyn ThreadCtx| {
                let a = ctx.spawn(Box::new(|c| {
                    for _ in 0..50 {
                        c.tick(997);
                        c.fetch_add_u64(64, 1);
                    }
                }));
                let b = ctx.spawn(Box::new(|c| {
                    for _ in 0..80 {
                        c.tick(311);
                        c.fetch_add_u64(128, 1);
                    }
                }));
                ctx.join(a);
                ctx.join(b);
            })
        });
        (r.virtual_cycles, r.commit_log_hash, rt.final_hash(0, 4096))
    };
    assert_eq!(run(), run());
}

#[test]
fn barrier_releases_all_parties_with_consistent_memory() {
    for &parallel in &[true, false] {
        let mut opts = Options::consequence_ic();
        opts.parallel_barrier = parallel;
        let mut rt = ConsequenceRuntime::new(cfg(), opts);
        let b = rt.create_barrier(4);
        let report = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (1..4)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        c.st_u64(i * 8, i as u64 + 10);
                        c.barrier_wait(b);
                        // After the barrier, everyone sees everyone's write.
                        let mut sum = 0;
                        for j in 0..4 {
                            sum += c.ld_u64(j * 8);
                        }
                        c.st_u64(4096 + i * 8, sum);
                    }))
                })
                .collect();
            ctx.st_u64(0, 10);
            ctx.barrier_wait(b);
            let mut sum = 0;
            for j in 0..4usize {
                sum += ctx.ld_u64(j * 8);
            }
            ctx.st_u64(4096, sum);
            for k in kids {
                ctx.join(k);
            }
        }));
        let expect = 10 + 11 + 12 + 13;
        for i in 0..4usize {
            assert_eq!(
                rt.final_u64(4096 + i * 8),
                expect,
                "parallel={parallel}, thread {i}"
            );
        }
        assert_eq!(report.counters.barrier_waits, 4);
    }
}

#[test]
fn barrier_reusable_across_generations() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let b = rt.create_barrier(2);
    rt.run(Box::new(move |ctx| {
        let k = ctx.spawn(Box::new(move |c| {
            for i in 0..5u64 {
                c.fetch_add_u64(0, i);
                c.barrier_wait(b);
                c.barrier_wait(b);
            }
        }));
        for _ in 0..5 {
            ctx.barrier_wait(b);
            ctx.barrier_wait(b);
        }
        ctx.join(k);
    }));
    assert_eq!(rt.final_u64(0), 1 + 2 + 3 + 4);
}

#[test]
fn condvar_signal_wakes_waiter() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let m = rt.create_mutex();
    let c = rt.create_cond();
    rt.run(Box::new(move |ctx| {
        let consumer = ctx.spawn(Box::new(move |t| {
            t.mutex_lock(m);
            while t.ld_u64(0) == 0 {
                t.cond_wait(c, m);
            }
            let v = t.ld_u64(0);
            t.st_u64(8, v * 2);
            t.mutex_unlock(m);
        }));
        ctx.tick(10_000);
        ctx.mutex_lock(m);
        ctx.st_u64(0, 21);
        ctx.cond_signal(c);
        ctx.mutex_unlock(m);
        ctx.join(consumer);
    }));
    assert_eq!(rt.final_u64(8), 42);
}

#[test]
fn cond_broadcast_wakes_all() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let m = rt.create_mutex();
    let c = rt.create_cond();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (1..4)
            .map(|i| {
                ctx.spawn(Box::new(move |t| {
                    t.mutex_lock(m);
                    while t.ld_u64(0) == 0 {
                        t.cond_wait(c, m);
                    }
                    t.mutex_unlock(m);
                    t.st_u64(i * 8, 1);
                }))
            })
            .collect();
        ctx.tick(50_000);
        ctx.mutex_lock(m);
        ctx.st_u64(0, 1);
        ctx.cond_broadcast(c);
        ctx.mutex_unlock(m);
        for k in kids {
            ctx.join(k);
        }
    }));
    for i in 1..4usize {
        assert_eq!(rt.final_u64(i * 8), 1, "waiter {i} not woken");
    }
}

/// The paper's §2.7 scenario: a thread spins on a flag that another thread
/// sets. Without a chunk limit the spinner would never see the update; with
/// one, it must terminate.
#[test]
fn chunk_limit_supports_ad_hoc_synchronization() {
    let mut opts = Options::consequence_ic();
    opts.chunk_limit = Some(10_000);
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    rt.run(Box::new(move |ctx| {
        let spinner = ctx.spawn(Box::new(|c| {
            // Ad-hoc spin on address 0 with no explicit synchronization.
            while c.ld_u64(0) == 0 {
                c.tick(10);
            }
            c.st_u64(8, 99);
        }));
        ctx.tick(30_000);
        ctx.st_u64(0, 1);
        // The setter must also commit; its own chunk limit forces that.
        ctx.join(spinner);
    }));
    assert_eq!(rt.final_u64(8), 99);
}

/// Thread-pool reuse: sequentially spawned threads should hit the pool.
#[test]
fn thread_pool_reuses_workers() {
    let (report, rt) = run_with(Options::consequence_ic(), || {
        Box::new(|ctx: &mut dyn ThreadCtx| {
            for i in 0..6u64 {
                let t = ctx.spawn(Box::new(move |c| {
                    c.fetch_add_u64(0, i);
                }));
                ctx.join(t);
            }
        })
    });
    assert_eq!(rt.final_u64(0), 15);
    assert!(
        report.counters.pool_hits >= 4,
        "expected pool reuse, got {} hits",
        report.counters.pool_hits
    );

    // With the pool disabled, every spawn forks.
    let (report2, _) = run_with(Options::consequence_ic().without("thread_pool"), || {
        Box::new(|ctx: &mut dyn ThreadCtx| {
            for i in 0..6u64 {
                let t = ctx.spawn(Box::new(move |c| {
                    c.fetch_add_u64(0, i);
                }));
                ctx.join(t);
            }
        })
    });
    assert_eq!(report2.counters.pool_hits, 0);
}

/// Fine-grained locks must actually allow disjoint critical sections; two
/// threads on different locks must both make progress and the outcome must
/// be deterministic.
#[test]
fn distinct_locks_do_not_alias() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let m0 = rt.create_mutex();
    let m1 = rt.create_mutex();
    rt.run(Box::new(move |ctx| {
        let a = ctx.spawn(Box::new(move |c| {
            for _ in 0..20 {
                c.mutex_lock(m0);
                c.fetch_add_u64(0, 1);
                c.mutex_unlock(m0);
            }
        }));
        let b = ctx.spawn(Box::new(move |c| {
            for _ in 0..20 {
                c.mutex_lock(m1);
                c.fetch_add_u64(8, 1);
                c.mutex_unlock(m1);
            }
        }));
        ctx.join(a);
        ctx.join(b);
    }));
    assert_eq!(rt.final_u64(0), 20);
    assert_eq!(rt.final_u64(8), 20);
}

/// Under the DWC preset all mutexes alias one global lock, yet the program
/// result must be identical.
#[test]
fn dwc_single_global_lock_still_correct() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::dwc());
    assert_eq!(rt.name(), "dwc");
    let m0 = rt.create_mutex();
    let m1 = rt.create_mutex();
    rt.run(Box::new(move |ctx| {
        let a = ctx.spawn(Box::new(move |c| {
            for _ in 0..10 {
                c.mutex_lock(m0);
                c.fetch_add_u64(0, 1);
                c.mutex_unlock(m0);
            }
        }));
        let b = ctx.spawn(Box::new(move |c| {
            for _ in 0..10 {
                c.mutex_lock(m1);
                c.fetch_add_u64(8, 1);
                c.mutex_unlock(m1);
            }
        }));
        ctx.join(a);
        ctx.join(b);
    }));
    assert_eq!(rt.final_u64(0), 10);
    assert_eq!(rt.final_u64(8), 10);
}

/// Consequence-RR must produce the same program results as Consequence-IC
/// for race-free programs (the schedules differ, the outcome must not).
#[test]
fn rr_and_ic_agree_on_race_free_output() {
    let program = |rt: &mut ConsequenceRuntime| {
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..3)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for _ in 0..10 {
                            c.tick(100 * (i + 1));
                            c.mutex_lock(m);
                            let v = c.ld_u64(0);
                            c.st_u64(0, v + i + 1);
                            c.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        rt.final_u64(0)
    };
    let mut ic = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let mut rr = ConsequenceRuntime::new(cfg(), Options::consequence_rr());
    assert_eq!(program(&mut ic), 10 * (1 + 2 + 3));
    assert_eq!(program(&mut rr), 10 * (1 + 2 + 3));
}

/// Coarsening changes the deterministic schedule (that is the point), but
/// it must preserve program correctness: a commutative reduction under a
/// mutex gives the same total with coarsening on or off, and each
/// configuration is individually deterministic across runs.
#[test]
fn coarsening_is_semantically_transparent() {
    let result = |coarsen: bool| {
        let opts = if coarsen {
            Options::consequence_ic()
        } else {
            Options::consequence_ic().without("coarsening")
        };
        let mut rt = ConsequenceRuntime::new(cfg(), opts);
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..3)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for j in 0..30u64 {
                            c.mutex_lock(m);
                            let v = c.ld_u64(0);
                            c.tick(5);
                            c.st_u64(0, v + i * 100 + j);
                            c.mutex_unlock(m);
                            c.tick(50);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        rt.final_u64(0)
    };
    let expected: u64 = (0..3u64)
        .flat_map(|i| (0..30u64).map(move |j| i * 100 + j))
        .sum();
    assert_eq!(result(true), expected);
    assert_eq!(result(false), expected);
}

/// With short critical sections and gaps, adaptive coarsening should
/// actually fire.
#[test]
fn coarsening_fires_on_fine_grained_locking() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let m = rt.create_mutex();
    let report = rt.run(Box::new(move |ctx| {
        for _ in 0..200 {
            ctx.mutex_lock(m);
            ctx.tick(10);
            ctx.mutex_unlock(m);
            ctx.tick(20);
        }
    }));
    // Single-threaded fine-grained locking: nearly every op coalesces.
    assert!(
        report.counters.coarsened_chunks > 100,
        "coarsening barely fired: {}",
        report.counters.coarsened_chunks
    );
}

#[test]
fn report_breakdown_accounts_all_threads() {
    let (report, _) = run_with(Options::consequence_ic(), || {
        Box::new(|ctx: &mut dyn ThreadCtx| {
            let t = ctx.spawn(Box::new(|c| c.tick(1_000)));
            ctx.tick(500);
            ctx.join(t);
        })
    });
    assert_eq!(report.per_thread.len(), 2);
    assert!(report.breakdown.chunk >= 1_500);
    assert!(report.virtual_cycles >= 1_000);
    assert!(report.peak_pages > 0);
}

#[test]
fn unlock_without_lock_is_contained() {
    // API misuse panics inside the workload; containment turns it into a
    // recorded panic on the report instead of crossing `run()`.
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let m = rt.create_mutex();
    let report = rt.run(Box::new(move |ctx| {
        ctx.mutex_unlock(m);
    }));
    assert_eq!(report.panics.len(), 1);
    assert!(
        report.panics[0].1.contains("unlocking"),
        "panic message should name the misuse: {:?}",
        report.panics[0].1
    );
}
