//! The §5.3 LRC estimator exercised through the live runtime: lock-chain
//! programs should show point-to-point savings, barrier programs none.

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, CostModel, MemExt, RunReport, Runtime, Tid};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 32,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: true,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn lock_partitioned_program() -> RunReport {
    // Two disjoint producer/consumer pairs, each through its own lock:
    // under LRC, pair A's pages never flow to pair B.
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let locks = [rt.create_mutex(), rt.create_mutex()];
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..4u64)
            .map(|i| {
                let pair = (i / 2) as usize;
                ctx.spawn(Box::new(move |c| {
                    // Each pair works on its own page.
                    let base = 4096 * (1 + pair);
                    for j in 0..12 {
                        c.tick(200);
                        c.mutex_lock(locks[pair]);
                        c.fetch_add_u64(base, i + j);
                        c.mutex_unlock(locks[pair]);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }))
}

fn barrier_program() -> RunReport {
    // Everyone writes a private page then meets at a barrier, repeatedly:
    // under LRC the barrier broadcasts everything anyway.
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let b = rt.create_barrier(4);
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (1..4)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for j in 0..8u64 {
                        c.st_u64(4096 * i, j);
                        c.tick(500);
                        c.barrier_wait(b);
                    }
                }))
            })
            .collect();
        for j in 0..8u64 {
            ctx.st_u64(0, j);
            ctx.tick(500);
            ctx.barrier_wait(b);
        }
        for k in kids {
            ctx.join(k);
        }
    }))
}

#[test]
fn lrc_bounded_by_tso_in_live_runs() {
    for report in [lock_partitioned_program(), barrier_program()] {
        assert!(report.counters.pages_propagated > 0);
        assert!(
            report.counters.lrc_pages_propagated <= report.counters.pages_propagated,
            "LRC {} must not exceed TSO {}",
            report.counters.lrc_pages_propagated,
            report.counters.pages_propagated
        );
    }
}

/// The paper's Figure 16 contrast: point-to-point locks benefit from LRC,
/// barriers do not.
#[test]
fn lrc_saves_on_locks_not_on_barriers() {
    let locks = lock_partitioned_program();
    let bars = barrier_program();
    let reduction = |r: &RunReport| {
        1.0 - r.counters.lrc_pages_propagated as f64 / r.counters.pages_propagated as f64
    };
    let lock_red = reduction(&locks);
    let bar_red = reduction(&bars);
    assert!(
        lock_red > bar_red + 0.1,
        "partitioned locks should save clearly more than barriers \
         (lock {lock_red:.2} vs barrier {bar_red:.2})"
    );
    assert!(
        bar_red < 0.15,
        "barrier broadcast should leave little for LRC to save ({bar_red:.2})"
    );
}

/// LRC tracking must not perturb execution: results match a non-tracking
/// run bit-for-bit.
#[test]
fn lrc_tracking_is_observation_only() {
    let run = |track: bool| {
        let mut c = cfg();
        c.track_lrc = track;
        let mut rt = ConsequenceRuntime::new(c, Options::consequence_ic());
        let m = rt.create_mutex();
        let report = rt.run(Box::new(move |ctx| {
            let t = ctx.spawn(Box::new(move |c| {
                for _ in 0..10 {
                    c.mutex_lock(m);
                    c.fetch_add_u64(0, 3);
                    c.mutex_unlock(m);
                    c.tick(100);
                }
            }));
            ctx.join(t);
        }));
        (report.commit_log_hash, report.virtual_cycles)
    };
    assert_eq!(run(true), run(false));
}
