//! The §4.1 lock-design comparison: Kendo-style polling locks must be
//! correct and deterministic, and the paper's blocking design must beat
//! them under contention.

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, CostModel, MemExt, Runtime, RuntimeMemExt, Tid};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn contended_counter(opts: Options) -> (u64, u64, u64) {
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    let m = rt.create_mutex();
    let report = rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..4u64)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for _ in 0..25 {
                        c.mutex_lock(m);
                        c.fetch_add_u64(0, 1);
                        c.tick(40);
                        c.mutex_unlock(m);
                        c.tick(60 * (i + 1));
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    (
        rt.final_u64(0),
        report.virtual_cycles,
        report.counters.token_acquisitions,
    )
}

/// Both designs compared without coarsening (§4.1 is about the base lock
/// protocol, and coarsening's token retention hides contention) and with
/// fixed overflow intervals (adaptive notification timing is wall-clock
/// dependent by design, §3.2, and these tests assert exact virtual times).
fn blocking() -> Options {
    Options::consequence_ic()
        .without("coarsening")
        .without("adaptive_overflow")
}

fn polling(increment: u64) -> Options {
    let mut o = blocking();
    o.polling_locks = true;
    o.polling_increment = increment;
    o
}

#[test]
fn polling_locks_are_correct_and_deterministic() {
    for inc in [100, 1_000, 10_000] {
        let a = contended_counter(polling(inc));
        assert_eq!(a.0, 100, "mutual exclusion must hold at increment {inc}");
        let b = contended_counter(polling(inc));
        assert_eq!(a, b, "polling must stay deterministic at increment {inc}");
    }
}

#[test]
fn blocking_beats_polling_under_contention() {
    let (count, blocking_v, blocking_tokens) = contended_counter(blocking());
    assert_eq!(count, 100);
    // A poorly tuned (small) increment is the paper's complaint: many
    // futile token round trips.
    let (count_p, polling_v, polling_tokens) = contended_counter(polling(100));
    assert_eq!(count_p, 100);
    assert!(
        polling_tokens > blocking_tokens,
        "polling must burn more token acquisitions \
         ({polling_tokens} vs {blocking_tokens})"
    );
    assert!(
        polling_v > blocking_v,
        "blocking design should win under contention \
         (blocking {blocking_v} vs polling {polling_v})"
    );
}

#[test]
fn polling_increment_is_the_papers_tuning_problem() {
    // Different increments give different (all-correct) performance —
    // exactly the "program-specific tuning" the paper's blocking design
    // removes.
    let runs: Vec<u64> = [100u64, 1_000, 10_000]
        .iter()
        .map(|&inc| contended_counter(polling(inc)).1)
        .collect();
    let min = *runs.iter().min().expect("nonempty");
    let max = *runs.iter().max().expect("nonempty");
    assert!(
        max as f64 / min as f64 > 1.05,
        "increments should visibly matter: {runs:?}"
    );
}
