//! Robustness tests: panic containment, deterministic poisoning, the
//! watchdog, and fast-scheduler failover.
//!
//! The containment contract under test: a panicking workload thread
//! departs the deterministic schedule like any other exit — clock
//! departure, token release, poison delivery and joiner wake-ups all
//! happen under the token, so a run that panics is exactly as
//! reproducible as one that does not.

use std::sync::Arc;

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{
    CommonConfig, CostModel, DmtError, HashSink, Job, PanicSite, PerturbHandle, Perturber,
    RunReport, Runtime, RuntimeMemExt, ThreadCtx, Tid, TraceHandle,
};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 64,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn hashed_cfg() -> CommonConfig {
    CommonConfig {
        trace: TraceHandle::to(Arc::new(HashSink::new())),
        ..cfg()
    }
}

fn run_with(
    c: CommonConfig,
    opts: Options,
    main: impl Fn() -> Job,
) -> (RunReport, ConsequenceRuntime) {
    let mut rt = ConsequenceRuntime::new(c, opts);
    let r = rt.run(main());
    (r, rt)
}

#[test]
fn child_panic_is_contained_and_join_reports() {
    let (report, _) = run_with(cfg(), Options::consequence_ic(), || {
        Box::new(|ctx: &mut dyn ThreadCtx| {
            let t = ctx.spawn(Box::new(|c| {
                c.tick(100);
                panic!("boom");
            }));
            match ctx.try_join(t) {
                Err(DmtError::ThreadPanicked { tid, msg }) => {
                    assert_eq!(tid, t);
                    assert!(msg.contains("boom"), "msg: {msg}");
                }
                other => panic!("expected ThreadPanicked, got {other:?}"),
            }
            ctx.st_u64(0, 1); // survivor keeps running
        })
    });
    assert_eq!(report.panics.len(), 1);
    assert!(report.panics[0].1.contains("boom"));
    assert!(report.fault.is_none());
    assert!(!report.degraded);
}

/// The acceptance scenario from the issue: a thread panics while holding
/// the global token (it is mid-synchronization when it dies). The run
/// must terminate, the token must be reclaimed, and the survivor must
/// observe a poisoned mutex — not a hang.
#[test]
fn panic_while_holding_mutex_poisons_deterministically() {
    let (report, rt) = {
        let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
        let m = rt.create_mutex();
        let r = rt.run(Box::new(move |ctx| {
            let t = ctx.spawn(Box::new(move |c| {
                c.mutex_lock(m);
                c.tick(10);
                panic!("died holding the lock");
            }));
            ctx.tick(50_000); // let the child acquire first
            match ctx.try_mutex_lock(m) {
                Err(DmtError::MutexPoisoned { mutex, by }) => {
                    assert_eq!(mutex, m);
                    assert_eq!(by, t);
                }
                other => panic!("expected MutexPoisoned, got {other:?}"),
            }
            let _ = ctx.try_join(t);
            ctx.st_u64(0, 7);
        }));
        (r, rt)
    };
    assert_eq!(report.panics.len(), 1);
    assert_eq!(rt.final_u64(0), 7);
}

/// Three waiters queue on a mutex whose owner dies. Poison must be
/// delivered to every waiter, in deterministic (FIFO, token-grant) order,
/// and the whole run — panic included — must hash identically on rerun,
/// under both the fast and the reference scheduler.
#[test]
fn poison_delivery_order_is_deterministic() {
    let run_once = |opts: Options| {
        let mut rt = ConsequenceRuntime::new(hashed_cfg(), opts);
        let m = rt.create_mutex();
        let r = rt.run(Box::new(move |ctx| {
            let owner = ctx.spawn(Box::new(move |c| {
                c.mutex_lock(m);
                c.tick(200_000);
                panic!("owner dies");
            }));
            let waiters: Vec<Tid> = (0..3)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        c.tick(10_000 * (i + 1));
                        match c.try_mutex_lock(m) {
                            Err(DmtError::MutexPoisoned { .. }) => {
                                // Record delivery order in shared memory.
                                let slot = c.atomic_fetch_add_u64(0, 1) as usize;
                                c.st_u64(8 + slot * 8, u64::from(c.tid().0));
                            }
                            other => panic!("expected poison, got {other:?}"),
                        }
                    }))
                })
                .collect();
            let _ = ctx.try_join(owner);
            for w in waiters {
                ctx.join(w);
            }
        }));
        let order: Vec<u64> = (0..3).map(|i| rt.final_u64(8 + i * 8)).collect();
        (r.schedule_hash, order, r.panics.len())
    };

    for opts in [
        Options::consequence_ic(),
        Options::consequence_ic().without("fast_sched"),
    ] {
        let (h1, o1, p1) = run_once(opts.clone());
        let (h2, o2, p2) = run_once(opts.clone());
        assert_eq!(p1, 1);
        assert_eq!(p1, p2);
        assert_eq!(o1, o2, "poison delivery order must be reproducible");
        // FIFO queue order: waiters arrived in clock order t2, t3, t4.
        assert_eq!(o1, vec![2, 3, 4]);
        assert_eq!(h1, h2, "schedule hash must survive a contained panic");
    }
}

#[test]
fn cond_waiter_is_woken_with_owner_died() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let m = rt.create_mutex();
    let c_id = rt.create_cond();
    let report = rt.run(Box::new(move |ctx| {
        let waiter = ctx.spawn(Box::new(move |c| {
            c.mutex_lock(m);
            match c.try_cond_wait(c_id, m) {
                Err(DmtError::CondOwnerDied { cond, mutex, .. }) => {
                    assert_eq!(cond, c_id);
                    assert_eq!(mutex, m);
                    // The mutex is poisoned and NOT re-acquired.
                    c.st_u64(0, 11);
                }
                other => panic!("expected CondOwnerDied, got {other:?}"),
            }
        }));
        let killer = ctx.spawn(Box::new(move |c| {
            c.tick(100_000); // after the waiter is parked on the condvar
            c.mutex_lock(m);
            panic!("owner dies holding m");
        }));
        let _ = ctx.try_join(killer);
        ctx.join(waiter);
    }));
    assert_eq!(report.panics.len(), 1);
    assert_eq!(rt.final_u64(0), 11);
}

/// A three-party barrier where one thread dies leaves only two live
/// threads: the barrier can never fill, so the arrived waiter must
/// observe a broken barrier (delivered as a contained panic through the
/// infallible API), not wait forever.
#[test]
fn barrier_breaks_when_a_party_dies() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    let b = rt.create_barrier(3);
    let report = rt.run(Box::new(move |ctx| {
        let waiter = ctx.spawn(Box::new(move |c| {
            c.barrier_wait(b); // blocks; the partner never comes
            c.st_u64(0, 99); // must NOT run
        }));
        let dier = ctx.spawn(Box::new(move |c| {
            c.tick(100_000);
            panic!("partner dies before arriving");
        }));
        let _ = ctx.try_join(dier);
        match ctx.try_join(waiter) {
            Err(DmtError::ThreadPanicked { msg, .. }) => {
                assert!(msg.contains("barrier"), "msg: {msg}");
            }
            other => panic!("expected waiter to die of BarrierBroken, got {other:?}"),
        }
    }));
    assert_eq!(report.panics.len(), 2);
    assert_eq!(rt.final_u64(0), 0);
}

#[test]
fn non_string_panic_payload_is_contained() {
    let (report, _) = run_with(cfg(), Options::consequence_ic(), || {
        Box::new(|ctx: &mut dyn ThreadCtx| {
            let t = ctx.spawn(Box::new(|_| {
                std::panic::resume_unwind(Box::new(42_i32));
            }));
            assert!(ctx.try_join(t).is_err());
        })
    });
    assert_eq!(report.panics.len(), 1);
    assert!(report.panics[0].1.contains("non-string"));
}

/// ABBA deadlock: with supervision enabled the run must *end*, carrying a
/// watchdog diagnosis, instead of hanging forever. A barrier rendezvous
/// forces both threads to hold their first lock before trying the second
/// (otherwise adaptive coarsening can serialize the two critical sections
/// and — deterministically — dodge the deadlock).
#[test]
fn watchdog_diagnoses_deadlock_instead_of_hanging() {
    let mut opts = Options::consequence_ic();
    opts.watchdog_stall_ms = Some(300);
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    let a = rt.create_mutex();
    let b = rt.create_mutex();
    let br = rt.create_barrier(2);
    let report = rt.run(Box::new(move |ctx| {
        let t1 = ctx.spawn(Box::new(move |c| {
            c.mutex_lock(a);
            c.barrier_wait(br);
            c.mutex_lock(b); // deadlock
            c.mutex_unlock(b);
            c.mutex_unlock(a);
        }));
        let t2 = ctx.spawn(Box::new(move |c| {
            c.tick(10_000);
            c.mutex_lock(b);
            c.barrier_wait(br);
            c.mutex_lock(a); // deadlock
            c.mutex_unlock(a);
            c.mutex_unlock(b);
        }));
        ctx.join(t1);
        ctx.join(t2);
    }));
    let fault = report.fault.expect("watchdog must report a fault");
    assert!(fault.contains("watchdog"), "fault: {fault}");
    assert!(fault.contains("deadlock"), "fault: {fault}");
    // The census names the cycle: both mutexes and their owners/waiters.
    assert!(fault.contains("mutex 0"), "fault: {fault}");
    assert!(fault.contains("mutex 1"), "fault: {fault}");
}

/// Corruption drill: deliberately drop the fast scheduler's head waiter
/// mid-run. The watchdog must detect the invariant violation, fail over
/// to the reference scheduler, and the run must complete correctly —
/// degraded, not dead.
#[test]
fn fast_scheduler_corruption_fails_over_and_completes() {
    let mut opts = Options::consequence_ic();
    opts.watchdog_stall_ms = Some(300);
    opts.inject_sched_corruption = Some(10);
    // Coarsening collapses this loop into a handful of grants; disable it
    // so the drill has a long grant stream with concurrent token waiters.
    opts.coarsening = false;
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    // Independent per-thread mutexes: all four threads are frequently
    // AtSync waiting for the *token* at once, so the drill has a
    // non-granted head waiter to lose.
    let ms: Vec<_> = (0..4).map(|_| rt.create_mutex()).collect();
    let report = rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = ms
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                ctx.spawn(Box::new(move |c| {
                    let addr = i * 8;
                    for _ in 0..25 {
                        c.mutex_lock(m);
                        let v = c.ld_u64(addr);
                        c.tick(20);
                        c.st_u64(addr, v + 1);
                        c.mutex_unlock(m);
                        c.tick(100);
                    }
                }))
            })
            .collect();
        for t in kids {
            ctx.join(t);
        }
    }));
    assert!(report.degraded, "run must have failed over");
    assert!(report.fault.is_none(), "failover is recovery, not failure");
    for i in 0..4 {
        assert_eq!(rt.final_u64(i * 8), 25, "the workload ran to completion");
    }
    assert!(report.panics.is_empty());
}

/// Seeded panic injection: the same (site, tid, nth) trigger produces the
/// same contained death at the same schedule point — identical schedule
/// hash, identical poison fallout — on every rerun.
struct DieAt(PanicSite, Tid, u64);

impl Perturber for DieAt {
    fn hit(&self, _: dmt_api::PerturbSite, _: Tid) -> u64 {
        0
    }
    fn panic_at(&self, site: PanicSite, tid: Tid, nth: u64) -> bool {
        site == self.0 && tid == self.1 && nth == self.2
    }
}

#[test]
fn injected_panic_reproduces_schedule_hash() {
    let run_once = || {
        let c = CommonConfig {
            perturb: PerturbHandle::to(Arc::new(DieAt(PanicSite::Lock, Tid(2), 3))),
            ..hashed_cfg()
        };
        let mut rt = ConsequenceRuntime::new(c, Options::consequence_ic());
        let m = rt.create_mutex();
        let r = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..3)
                .map(|_| {
                    ctx.spawn(Box::new(move |c| {
                        for _ in 0..10 {
                            c.mutex_lock(m);
                            let v = c.ld_u64(0);
                            c.tick(10);
                            c.st_u64(0, v + 1);
                            c.mutex_unlock(m);
                            c.tick(200);
                        }
                    }))
                })
                .collect();
            for t in kids {
                let _ = ctx.try_join(t);
            }
        }));
        (r.schedule_hash, r.panics.clone(), rt.final_u64(0))
    };
    let (h1, p1, v1) = run_once();
    let (h2, p2, v2) = run_once();
    assert_eq!(p1.len(), 1, "exactly the injected death");
    assert_eq!(p1[0].0, Tid(2));
    assert!(p1[0].1.contains("injected panic at lock #3"), "{}", p1[0].1);
    assert_eq!(p1, p2);
    assert_eq!(h1, h2, "injected death must not perturb determinism");
    assert_eq!(v1, v2);
}
