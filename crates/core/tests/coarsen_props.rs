//! Property tests for the adaptive-coarsening predictors (§3.1).
//!
//! The coarsening decisions feed directly into virtual time, so the
//! arithmetic must be total: no overflow panic, no wraparound, for *any*
//! chunk-length sample or budget configuration. These properties drive the
//! predictors with adversarial 64-bit inputs (the EWMA average and the
//! multiplicative increase both used to overflow near `u64::MAX`).

use consequence::coarsen::{CoarsenState, Ewma};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// Mixes huge values in so sums and products actually overflow.
    fn sample(&mut self) -> u64 {
        match self.next() % 4 {
            0 => u64::MAX - self.next() % 1_000,
            1 => self.next() % 1_000,
            _ => self.next(),
        }
    }
}

#[test]
fn ewma_stays_between_old_estimate_and_sample() {
    let mut rng = Lcg(42);
    for _ in 0..10_000 {
        let mut e = Ewma::default();
        for _ in 0..8 {
            let prev = e.get();
            let s = rng.sample();
            e.update(s);
            let (lo, hi) = (prev.min(s), prev.max(s));
            assert!(
                e.get() >= lo && e.get() <= hi,
                "EWMA {} left [{lo}, {hi}] (prev {prev}, sample {s})",
                e.get()
            );
        }
    }
}

#[test]
fn ewma_matches_wide_arithmetic() {
    let mut rng = Lcg(7);
    for _ in 0..10_000 {
        let mut e = Ewma::default();
        let mut wide = 0u128;
        for _ in 0..4 {
            let s = rng.sample();
            e.update(s);
            wide = (wide + s as u128) / 2;
            assert_eq!(e.get() as u128, wide, "overflow-safe average diverged");
        }
    }
}

#[test]
fn adapt_never_leaves_configured_bounds() {
    let mut rng = Lcg(1234);
    for _ in 0..2_000 {
        let a = rng.sample();
        let b = rng.sample();
        let (min, cap) = (a.min(b), a.max(b));
        let mut c = CoarsenState::new(rng.sample(), min, cap, None);
        for _ in 0..64 {
            let budget = c.budget();
            assert!(
                (min..=cap).contains(&budget),
                "budget {budget} outside [{min}, {cap}]"
            );
            c.adapt(rng.next().is_multiple_of(2));
        }
    }
}

#[test]
fn adapt_monotone_per_step() {
    // One increase step never shrinks the budget; one decrease step never
    // grows it (each may be clipped by cap/min, but never cross over).
    let mut rng = Lcg(99);
    for _ in 0..2_000 {
        let a = rng.sample();
        let b = rng.sample();
        let (min, cap) = (a.min(b), a.max(b));
        let mut c = CoarsenState::new(rng.sample(), min, cap, None);
        for _ in 0..32 {
            let before = c.budget();
            let grow = rng.next().is_multiple_of(2);
            c.adapt(grow);
            if grow {
                assert!(c.budget() >= before, "increase shrank the budget");
            } else {
                assert!(c.budget() <= before, "decrease grew the budget");
            }
        }
    }
}

#[test]
fn extreme_bounds_are_total() {
    // cap = u64::MAX: doubling from near the top must saturate, not wrap.
    let mut c = CoarsenState::new(u64::MAX - 1, 1, u64::MAX, None);
    c.adapt(true);
    assert_eq!(c.budget(), u64::MAX);
    c.adapt(true);
    assert_eq!(c.budget(), u64::MAX);
    // And the 3/4 decrease from the top keeps exact ⌊3m/4⌋ semantics.
    c.adapt(false);
    assert_eq!(c.budget(), (u64::MAX as u128 * 3 / 4) as u64);

    // min = 0 must not underflow or get stuck above the floor.
    let mut c = CoarsenState::new(1, 0, 8, None);
    for _ in 0..8 {
        c.adapt(false);
    }
    assert_eq!(c.budget(), 0);
    c.adapt(true);
    assert_eq!(c.budget(), 0, "doubling zero stays zero");
}
