//! The recorded token-grant schedule: a practical trace of the
//! deterministic total order, and the strongest reproducibility witness.

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, CostModel, MemExt, Runtime, ThreadCtx, Tid};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
    }
}

fn traced_run(opts: Options) -> Vec<(Tid, u64)> {
    let mut opts = opts;
    opts.record_schedule = true;
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    let m = rt.create_mutex();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3u64)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for j in 0..10 {
                        c.tick(71 * (i + 1) + j);
                        c.mutex_lock(m);
                        c.fetch_add_u64(0, 1);
                        c.mutex_unlock(m);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    rt.take_schedule()
}

#[test]
fn schedule_is_recorded_and_identical_across_runs() {
    let a = traced_run(Options::consequence_ic());
    let b = traced_run(Options::consequence_ic());
    assert!(!a.is_empty(), "schedule should be recorded");
    assert_eq!(a, b, "token-grant schedules must be bit-identical");
}

#[test]
fn schedule_grants_follow_clock_tid_order_locally() {
    // Under IC ordering, among grants that were *waiting simultaneously*
    // the lower (clock, tid) goes first. We can't reconstruct waiting sets
    // from the trace, but the schedule must at least be per-thread clock
    // monotone (a thread's own grants happen in its program order).
    let s = traced_run(Options::consequence_ic());
    let mut last: std::collections::HashMap<Tid, u64> = std::collections::HashMap::new();
    for (t, c) in s {
        if let Some(prev) = last.get(&t) {
            assert!(c >= *prev, "thread {t} clock went backwards: {prev} -> {c}");
        }
        last.insert(t, c);
    }
}

#[test]
fn rr_and_ic_schedules_differ_but_are_each_stable() {
    let ic = traced_run(Options::consequence_ic());
    let rr = traced_run(Options::consequence_rr());
    assert_eq!(rr, traced_run(Options::consequence_rr()));
    // Different policies produce different (deterministic) orders for this
    // skewed-rate program.
    assert_ne!(ic, rr, "IC and RR should schedule this program differently");
}

#[test]
fn schedule_off_by_default_costs_nothing() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    rt.run(Box::new(|ctx| ctx.tick(100)));
    assert!(rt.take_schedule().is_empty());
}
