//! The recorded token-grant schedule: a practical trace of the
//! deterministic total order, and the strongest reproducibility witness.

use std::sync::Arc;

use consequence::{ConsequenceRuntime, Options};
use dmt_api::trace::{diagnose, Event, EventKind, HashSink, MemorySink, TraceHandle};
use dmt_api::{CommonConfig, CostModel, MemExt, Runtime, Tid};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn traced_run(opts: Options) -> Vec<(Tid, u64)> {
    let mut opts = opts;
    opts.record_schedule = true;
    let mut rt = ConsequenceRuntime::new(cfg(), opts);
    let m = rt.create_mutex();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3u64)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for j in 0..10 {
                        c.tick(71 * (i + 1) + j);
                        c.mutex_lock(m);
                        c.fetch_add_u64(0, 1);
                        c.mutex_unlock(m);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    rt.take_schedule()
}

#[test]
fn schedule_is_recorded_and_identical_across_runs() {
    let a = traced_run(Options::consequence_ic());
    let b = traced_run(Options::consequence_ic());
    assert!(!a.is_empty(), "schedule should be recorded");
    assert_eq!(a, b, "token-grant schedules must be bit-identical");
}

#[test]
fn schedule_grants_follow_clock_tid_order_locally() {
    // Under IC ordering, among grants that were *waiting simultaneously*
    // the lower (clock, tid) goes first. We can't reconstruct waiting sets
    // from the trace, but the schedule must at least be per-thread clock
    // monotone (a thread's own grants happen in its program order).
    let s = traced_run(Options::consequence_ic());
    let mut last: std::collections::HashMap<Tid, u64> = std::collections::HashMap::new();
    for (t, c) in s {
        if let Some(prev) = last.get(&t) {
            assert!(c >= *prev, "thread {t} clock went backwards: {prev} -> {c}");
        }
        last.insert(t, c);
    }
}

#[test]
fn rr_and_ic_schedules_differ_but_are_each_stable() {
    let ic = traced_run(Options::consequence_ic());
    let rr = traced_run(Options::consequence_rr());
    assert_eq!(rr, traced_run(Options::consequence_rr()));
    // Different policies produce different (deterministic) orders for this
    // skewed-rate program.
    assert_ne!(ic, rr, "IC and RR should schedule this program differently");
}

#[test]
fn schedule_off_by_default_costs_nothing() {
    let mut rt = ConsequenceRuntime::new(cfg(), Options::consequence_ic());
    rt.run(Box::new(|ctx| ctx.tick(100)));
    assert!(rt.take_schedule().is_empty());
}

/// The mixed-primitive program used by the event-trace tests below:
/// `skew` perturbs one thread's compute rate, which is enough to reorder
/// the deterministic schedule (and must do so *reproducibly*).
fn trace_program(trace: dmt_api::TraceHandle, opts: Options, skew: u64) -> dmt_api::RunReport {
    let mut c = cfg();
    c.trace = trace;
    let mut rt = ConsequenceRuntime::new(c, opts);
    let m = rt.create_mutex();
    let b = rt.create_barrier(4);
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3u64)
            .map(|i| {
                ctx.spawn(Box::new(move |t| {
                    let rate = if i == 0 { 71 + skew } else { 71 * (i + 1) };
                    for j in 0..8 {
                        t.tick(rate + j);
                        t.mutex_lock(m);
                        t.fetch_add_u64(0, 1);
                        t.mutex_unlock(m);
                    }
                    t.barrier_wait(b);
                }))
            })
            .collect();
        ctx.tick(40);
        ctx.barrier_wait(b);
        for k in kids {
            ctx.join(k);
        }
    }))
}

#[test]
fn schedule_hash_identical_across_three_runs() {
    for opts in [Options::consequence_ic(), Options::consequence_rr()] {
        let hashes: Vec<u64> = (0..3)
            .map(|_| {
                let sink = Arc::new(HashSink::new());
                let r = trace_program(TraceHandle::to(sink), opts.clone(), 0);
                assert_ne!(r.schedule_hash, 0, "hash should cover events");
                r.schedule_hash
            })
            .collect();
        assert_eq!(hashes[0], hashes[1]);
        assert_eq!(hashes[1], hashes[2]);
    }
}

#[test]
fn report_event_counts_cover_all_primitives_used() {
    let sink = Arc::new(HashSink::new());
    let r = trace_program(TraceHandle::to(sink), Options::consequence_ic(), 0);
    for kind in [
        EventKind::TokenAcquire,
        EventKind::TokenRelease,
        EventKind::MutexLock,
        EventKind::MutexUnlock,
        EventKind::BarrierArrive,
        EventKind::BarrierOpen,
        EventKind::Commit,
        EventKind::Update,
        EventKind::Spawn,
        EventKind::Join,
        EventKind::Exit,
    ] {
        assert!(r.events.get(kind) > 0, "no {} events", kind.name());
    }
    // 4 parties, one generation each of arrive; exactly one open per gen.
    assert_eq!(r.events.get(EventKind::BarrierArrive), 4);
    assert_eq!(r.events.get(EventKind::BarrierOpen), 1);
    assert_eq!(r.events.get(EventKind::Spawn), 3);
    assert_eq!(r.events.get(EventKind::Exit), 4);
}

#[test]
fn perturbed_run_diverges_and_diagnoser_names_first_event() {
    let rec = |skew| {
        let sink = Arc::new(MemorySink::new(1 << 16));
        let r = trace_program(
            TraceHandle::to(sink.clone()),
            Options::consequence_ic(),
            skew,
        );
        let (events, dropped) = sink.take();
        assert_eq!(dropped, 0, "ring must hold the whole trace");
        (events, r.schedule_hash)
    };
    let (base, h_base) = rec(0);
    let (same, h_same) = rec(0);
    assert_eq!(h_base, h_same);
    assert!(diagnose(&base, &same).is_none(), "identical runs diverge?");

    // Skewing thread 0's compute rate changes its token-arrival clocks,
    // which IC ordering must translate into a *different* (but itself
    // deterministic) schedule.
    let (skewed, h_skewed) = rec(5_000);
    assert_ne!(h_base, h_skewed, "perturbation should change the schedule");
    let d = diagnose(&base, &skewed).expect("hashes differ but no divergence?");
    // The report names a concrete first event on at least one side...
    assert!(d.left.is_some() || d.right.is_some());
    // ...and the common prefix really is common.
    assert_eq!(&base[..d.index], &skewed[..d.index]);
    let msg = format!("{d}");
    assert!(
        msg.contains(&format!("diverge at event #{}", d.index)),
        "unhelpful report: {msg}"
    );
}

#[test]
fn memory_and_hash_sinks_agree_on_the_hash() {
    let mem = Arc::new(MemorySink::new(1 << 16));
    let r_mem = trace_program(TraceHandle::to(mem.clone()), Options::consequence_rr(), 0);
    let hash_sink = Arc::new(HashSink::new());
    let r_hash = trace_program(TraceHandle::to(hash_sink), Options::consequence_rr(), 0);
    assert_eq!(r_mem.schedule_hash, r_hash.schedule_hash);
    // Replaying the recorded events through a fresh hasher reproduces the
    // incremental hash: the ring buffer lost nothing.
    let (events, dropped) = mem.take();
    assert_eq!(dropped, 0);
    let replay = HashSink::new();
    for ev in &events {
        dmt_api::trace::TraceSink::emit(&replay, ev, true, dmt_api::DomainId::ROOT);
    }
    assert_eq!(
        dmt_api::trace::TraceSink::schedule_hash(&replay),
        r_mem.schedule_hash
    );
    // Sanity: the trace contains real scheduling content.
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::TokenAcquire { .. })));
}
