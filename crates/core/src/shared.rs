//! Shared runtime state: the global coordination structures every
//! Consequence thread mutates under one lock.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

use std::sync::atomic::AtomicBool;

use dmt_api::sync::{Condvar, Mutex};

use conversion::{ParallelCommit, Segment, Workspace};
use det_clock::{ReplayCtl, SchedTable, Slots};
use dmt_api::{Breakdown, CachePadded, CommonConfig, Counters, DmtError, Job, MutexId, Tid};

use crate::coarsen::Ewma;
use crate::lrc::LrcTracker;
use crate::options::Options;

/// A deterministic mutex.
#[derive(Debug, Default)]
pub(crate) struct MutexSt {
    pub owner: Option<Tid>,
    /// FIFO wait queue; push order is token order, hence deterministic.
    pub waiters: VecDeque<Tid>,
    /// Per-lock EWMA of critical-section length (coarsening predictor).
    pub cs_est: Ewma,
    /// Clock at which the current owner acquired the lock.
    pub cs_start_clock: u64,
    /// Acquisitions granted so far; the next grant takes ticket
    /// `tickets + 1`. Trace events use this so two runs can be compared
    /// per-lock, not just globally.
    pub tickets: u64,
    /// Set (to the dying owner) when a thread panicked while holding this
    /// mutex. Every subsequent acquirer gets a deterministic
    /// [`DmtError::MutexPoisoned`] in token-grant order.
    pub poisoned: Option<Tid>,
}

/// A deterministic condition variable. Waiters carry the mutex they
/// released so owner-death poisoning can wake them with a deterministic
/// [`DmtError::CondOwnerDied`].
#[derive(Debug, Default)]
pub(crate) struct CondSt {
    pub waiters: VecDeque<(Tid, MutexId)>,
}

/// A deterministic read-write lock.
#[derive(Debug, Default)]
pub(crate) struct RwSt {
    pub writer: Option<Tid>,
    pub readers: u32,
    /// FIFO wait queue; `true` marks a writer.
    pub waiters: VecDeque<(Tid, bool)>,
    /// Set when the exclusive holder panicked (see [`MutexSt::poisoned`]).
    /// A dying *reader* cannot poison: reader holds are not attributed per
    /// thread, so its count leaks instead (documented in ROBUSTNESS.md —
    /// the watchdog reports the resulting stall).
    pub poisoned: Option<Tid>,
}

/// Barrier lifecycle within one generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BarPhase {
    /// Accepting arrivals.
    Collecting,
    /// Parallel barrier only: phase 2 merging in progress.
    Merging,
    /// Commits installed; waiters may update and leave.
    Installed,
}

/// A deterministic barrier.
pub(crate) struct BarrierSt {
    pub parties: usize,
    pub phase: BarPhase,
    pub gen: u64,
    pub arrived: Vec<Tid>,
    pub max_arrival_clock: u64,
    /// Two-phase commit of the current generation (parallel barrier only).
    pub pc: Option<Arc<ParallelCommit>>,
    /// Virtual time at which phase 2 may begin (the sealing event).
    pub merge_start_v: u64,
    pub phase2_done: usize,
    pub phase2_max_v: u64,
    /// Virtual time at which the barrier opened.
    pub install_v: u64,
    /// Version committed when the barrier opened; leavers update exactly
    /// to it so update work is deterministic.
    pub install_version: u64,
    pub leaving: usize,
    /// Set when a participant (or would-be participant) panicked such that
    /// the barrier can never fill again; every waiter and subsequent
    /// arriver gets a deterministic [`DmtError::BarrierBroken`].
    pub broken: bool,
}

impl BarrierSt {
    pub fn new(parties: usize) -> BarrierSt {
        BarrierSt {
            parties,
            phase: BarPhase::Collecting,
            gen: 0,
            arrived: Vec::new(),
            max_arrival_clock: 0,
            pc: None,
            merge_start_v: 0,
            phase2_done: 0,
            phase2_max_v: 0,
            install_v: 0,
            install_version: 0,
            leaving: 0,
            broken: false,
        }
    }

    /// Resets for the next generation once every party has left.
    /// A broken barrier stays broken: the departed party can never return.
    pub fn reset(&mut self) {
        self.phase = BarPhase::Collecting;
        self.gen += 1;
        self.arrived.clear();
        self.max_arrival_clock = 0;
        self.pc = None;
        self.merge_start_v = 0;
        self.phase2_done = 0;
        self.phase2_max_v = 0;
        self.install_v = 0;
        self.install_version = 0;
        self.leaving = 0;
    }
}

/// Per-thread runtime bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct ThreadSt {
    /// Wake flag for threads blocked on a lock/condvar/join.
    pub wake: bool,
    /// Virtual time of the event that raised `wake` (deterministic: the
    /// waker and its virtual time are functions of the token order).
    pub wake_v: u64,
    /// Threads blocked in `join` on this thread.
    pub joiners: Vec<Tid>,
    pub finished: bool,
    pub exit_clock: u64,
    pub exit_v: u64,
    /// Logical clock at the thread's most recent departure.
    pub saved_clock: u64,
    /// This thread's job panicked; `join` reports
    /// [`DmtError::ThreadPanicked`] instead of succeeding.
    pub panicked: bool,
    /// Panic message (best-effort string form of the payload).
    pub panic_msg: String,
    /// Error to deliver instead of a successful wake: set by a dying
    /// owner when it drains this thread from a poisoned queue. Consumed
    /// by `block_until_woken` together with the wake flag, so delivery
    /// order is the deterministic wake order.
    pub wake_err: Option<DmtError>,
}

/// Message to a worker OS thread.
pub(crate) enum Msg {
    Start {
        tid: Tid,
        job: Job,
        clock: u64,
        v: u64,
        ws: Workspace,
    },
    Shutdown,
}

/// A pooled worker: its channel and the workspace it retained (§3.3).
pub(crate) struct PoolEntry {
    pub tx: Sender<Msg>,
    pub ws: Workspace,
}

/// Lock-protected mutable runtime state.
pub(crate) struct Inner {
    pub table: SchedTable,
    pub token: Option<Tid>,
    /// Clock of the last thread to release the token (§3.5 fast-forward).
    pub last_release_clock: u64,
    /// Virtual time of the last token release (wake-edge chaining).
    pub last_release_v: u64,
    /// Previous entrant into global coordination (coarsening MIMD signal).
    pub last_entrant: Option<Tid>,
    pub mutexes: Vec<MutexSt>,
    pub conds: Vec<CondSt>,
    pub rwlocks: Vec<RwSt>,
    pub barriers: Vec<BarrierSt>,
    pub threads: Vec<ThreadSt>,
    pub next_tid: u32,
    /// Registered, not yet finished threads.
    pub live: u32,
    pub pool: Vec<PoolEntry>,
    pub handles: Vec<JoinHandle<()>>,
    pub reports: Vec<(Tid, Breakdown)>,
    pub counters: Counters,
    pub max_exit_v: u64,
    pub lrc: Option<LrcTracker>,
    pub started: bool,
    /// Token-grant schedule, recorded when `Options::record_schedule`.
    pub schedule: Vec<(Tid, u64)>,
    /// Monotone count of token grants: the watchdog's logical-progress
    /// signal (GMIC advancing ⇒ grants happening).
    pub grant_seq: u64,
    /// Raised by the watchdog (deadlock / unrecoverable invariant) — every
    /// blocked protocol path unwinds with [`DmtError::Shutdown`].
    pub shutdown: bool,
    /// The watchdog's diagnosis when it gave up on the run.
    pub fault: Option<String>,
    /// Contained workload panics in containment (token-grant) order.
    pub panics: Vec<(Tid, String)>,
    /// The [`Options::inject_sched_corruption`] drill already fired
    /// (it corrupts exactly once).
    pub corruption_done: bool,
}

/// State shared between the runtime handle and every worker thread.
pub(crate) struct Shared {
    pub cfg: CommonConfig,
    pub opts: Options,
    pub seg: Segment,
    pub inner: Mutex<Inner>,
    pub cv: Condvar,
    /// Per-thread parkers for targeted wake-ups (fast-path scheduler):
    /// a thread blocked on the token or a wake flag waits on its own
    /// cache-padded condvar (paired with `inner`), so a hand-off wakes
    /// exactly one thread instead of broadcasting on `cv`.
    pub parkers: Box<[CachePadded<Condvar>]>,
    /// Lock-free half of the fast-path scheduler (also reachable through
    /// `Inner::table` when it is the fast table): publication slots,
    /// head-waiter key, token-free flag, watermark.
    pub slots: Arc<Slots>,
    /// The fast scheduler failed an invariant check and the watchdog
    /// failed the run over to the reference table. From then on every
    /// wake broadcasts to the shared condvar *and* all parkers (threads
    /// chose their wait condvar before the failover).
    pub degraded: AtomicBool,
    /// Recorded grant script driving this run (replay mode). When set,
    /// token admission follows the script instead of recomputed
    /// eligibility until the script is exhausted or marked diverged.
    pub replay: Option<Arc<ReplayCtl>>,
}

impl Shared {
    pub fn new_replaying(
        cfg: CommonConfig,
        opts: Options,
        replay: Option<Arc<ReplayCtl>>,
    ) -> Arc<Shared> {
        let mut seg = Segment::new(cfg.heap_pages, cfg.max_threads);
        seg.set_perturb(cfg.perturb.clone());
        if opts.pipeline_commit {
            seg.enable_pipeline(opts.pipeline_workers);
        }
        let lrc = cfg.track_lrc.then(|| LrcTracker::new(cfg.max_threads));
        let slots = Slots::new(cfg.max_threads);
        let parkers = (0..cfg.max_threads)
            .map(|_| CachePadded::new(Condvar::new()))
            .collect();
        // Preallocate per-thread vectors to their max_threads-derived
        // bounds so hot paths never reallocate (and never move the
        // cache-padded thread slots mid-run).
        let max_t = cfg.max_threads;
        Arc::new(Shared {
            inner: Mutex::new(Inner {
                table: SchedTable::new(opts.sched, opts.order, slots.clone()),
                token: None,
                last_release_clock: 0,
                last_release_v: 0,
                last_entrant: None,
                mutexes: Vec::new(),
                conds: Vec::new(),
                rwlocks: Vec::new(),
                barriers: Vec::new(),
                threads: Vec::with_capacity(max_t),
                next_tid: 0,
                live: 0,
                pool: Vec::with_capacity(max_t),
                handles: Vec::with_capacity(max_t),
                reports: Vec::with_capacity(max_t),
                counters: Counters::default(),
                max_exit_v: 0,
                lrc,
                started: false,
                schedule: if opts.record_schedule {
                    // One grant per sync op; start with a generous page-
                    // sized chunk per thread and let it grow from there.
                    Vec::with_capacity(max_t * 512)
                } else {
                    Vec::new()
                },
                grant_seq: 0,
                shutdown: false,
                fault: None,
                panics: Vec::new(),
                corruption_done: false,
            }),
            cv: Condvar::new(),
            parkers,
            slots,
            degraded: AtomicBool::new(false),
            replay,
            cfg,
            opts,
            seg,
        })
    }
}
