//! The per-thread protocol engine: Consequence's implementation of
//! [`ThreadCtx`].
//!
//! Every synchronization operation follows the paper's token discipline
//! (Figures 7–9): pause the clock, acquire the global token when eligible
//! under the deterministic order, commit/update versioned memory, perform
//! the operation, release the token. Adaptive coarsening (§3.1) short-cuts
//! this by *retaining* the token across operations and deferring the
//! commit, which is safe precisely because the token holder is the only
//! thread that can commit: its isolated view stays current.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use conversion::Workspace;
use det_clock::{OrderPolicy, OverflowPolicy, SchedKind, ThreadState};
use dmt_api::trace::Event;
use dmt_api::{
    Addr, BarrierId, Breakdown, CachePadded, CondId, ContainedError, CostModel, Counters, DmtError,
    DmtResult, Job, MutexId, PanicSite, PerturbSite, RwLockId, ThreadCtx, Tid,
};

use crate::coarsen::{CoarsenState, Ewma};
use crate::lrc::LrcObject;
use crate::shared::{BarPhase, Inner, Msg, Shared, ThreadSt};

/// Consequence's per-thread execution context.
pub(crate) struct Ctx {
    sh: Arc<Shared>,
    tid: Tid,
    /// Taken at [`Ctx::finish`] (pooled or dropped); always `Some` before.
    ws: Option<Workspace>,
    /// Channel with which this worker re-pools itself at exit (§3.3);
    /// `None` for the main thread and for non-pooling configurations.
    pool_tx: Option<std::sync::mpsc::Sender<Msg>>,
    /// Deterministic logical clock (retired user instructions).
    clock: u64,
    /// Virtual time in cycles.
    v: u64,
    /// Logical clock at which the next publication fires.
    next_pub: u64,
    ovf: OverflowPolicy,
    coarsen: CoarsenState,
    /// True between token acquisition and release — including across
    /// coarsened synchronization operations.
    holding_token: bool,
    /// Whether `commit_and_update` has run since the current token
    /// acquisition, i.e. the isolated view is current. A coarsened run may
    /// only begin from a current view (Fig. 6 keeps the first global
    /// coordination phase whole; only subsequent phases are merged).
    current_since_acquire: bool,
    /// Logical clock when the token was acquired (coarsening budget).
    token_start_clock: u64,
    last_sync_end_clock: u64,
    chunk_start_clock: u64,
    bd: Breakdown,
    /// Cache-padded so neighbouring threads' hot counter lines never
    /// false-share when contexts live in adjacent allocations.
    cnt: CachePadded<Counters>,
    cost: CostModel,
    /// Per-[`PanicSite`] injection counters, indexed by site position in
    /// [`PanicSite::ALL`]. The decision to panic is a pure function of
    /// `(site, tid, nth)`, so the injected schedule is reproducible.
    inject_counts: [u64; PanicSite::ALL.len()],
    /// Set while the exit/abort protocol runs: injection must not fire
    /// inside teardown (it would unwind out of a consumed context), and a
    /// nested failure during containment falls through to the quiet path.
    suppress_inject: bool,
    /// The containment teardown decremented `live` and filed reports; a
    /// later quiet pass must not double-count.
    torn_down: bool,
    /// EWMA of this thread's committed write-set size, driving the
    /// pre-twin budget handed to the settle pool before each commit.
    /// Prediction only moves a page copy off the critical path; hits and
    /// misses charge identically, so it cannot perturb the schedule.
    pretwin_est: Ewma,
}

impl Ctx {
    pub(crate) fn new(
        sh: Arc<Shared>,
        tid: Tid,
        ws: Workspace,
        clock: u64,
        v: u64,
        pool_tx: Option<std::sync::mpsc::Sender<Msg>>,
    ) -> Ctx {
        let opts = &sh.opts;
        let mut ovf = OverflowPolicy::new(opts.base_overflow, opts.adaptive_overflow);
        let next_pub =
            ovf.next_threshold_biased(clock, None, |iv| sh.cfg.perturb.overflow_interval(tid, iv));
        let coarsen = CoarsenState::new(
            opts.coarsen_initial,
            opts.coarsen_min,
            opts.coarsen_cap,
            opts.static_coarsen,
        );
        let cost = sh.cfg.cost;
        Ctx {
            sh,
            tid,
            ws: Some(ws),
            pool_tx,
            clock,
            v,
            next_pub,
            ovf,
            coarsen,
            holding_token: false,
            current_since_acquire: false,
            token_start_clock: clock,
            last_sync_end_clock: clock,
            chunk_start_clock: clock,
            bd: Breakdown::default(),
            cnt: CachePadded::new(Counters::default()),
            cost,
            inject_counts: [0; PanicSite::ALL.len()],
            suppress_inject: false,
            torn_down: false,
            pretwin_est: Ewma::default(),
        }
    }

    /// Whether the fast-path scheduler (lock-free publication slots +
    /// targeted per-thread parkers) is active. Flips off when the
    /// watchdog degrades the run to the reference table.
    #[inline]
    fn fast_sched(&self) -> bool {
        self.sh.opts.sched == SchedKind::Fast && !self.sh.degraded.load(Ordering::Relaxed)
    }

    /// Token-admission predicate. Ordinary runs recompute eligibility
    /// from published clocks; a replaying run instead asks the recorded
    /// grant script whether this thread is the scripted next grantee,
    /// falling back to recomputed eligibility once the script is
    /// exhausted or abandoned on divergence (so the run always finishes
    /// and can report *where* it split).
    #[inline]
    fn admitted(&self, inner: &mut Inner) -> bool {
        if let Some(ctl) = &self.sh.replay {
            if let Some(ok) = ctl.admits(self.tid.0) {
                return ok;
            }
        }
        inner.table.eligible(self.tid)
    }

    /// Delivers a runtime error through an infallible [`ThreadCtx`]
    /// method: unwind with a [`ContainedError`] payload, caught at the
    /// thread boundary and turned into deterministic containment.
    fn raise(&self, e: DmtError) -> ! {
        std::panic::resume_unwind(Box::new(ContainedError(e)))
    }

    /// Fires a seeded panic-injection site (`stress --inject-panic`).
    /// The unwind carries [`dmt_api::InjectedPanic`] so the boundary can
    /// report what fired. Decisions are pure in `(site, tid, nth)`:
    /// reruns of the same seed panic at the same logical point.
    #[inline]
    fn maybe_inject_panic(&mut self, site: PanicSite) {
        if self.suppress_inject {
            return;
        }
        let idx = site as usize;
        let nth = self.inject_counts[idx];
        self.inject_counts[idx] += 1;
        if self.sh.cfg.perturb.panic_at(site, self.tid, nth) {
            std::panic::resume_unwind(Box::new(dmt_api::InjectedPanic { site, nth }));
        }
    }

    /// Wakes every thread that could be parked anywhere. Once a run is
    /// degraded, threads that chose a per-thread parker before the
    /// failover are still waiting on it, so the reference path's shared-
    /// condvar broadcast alone would strand them.
    fn herd_notify(&self) {
        self.sh.cv.notify_all();
        if self.sh.degraded.load(Ordering::Relaxed) {
            for p in self.sh.parkers.iter() {
                p.notify_all();
            }
        }
    }

    /// Wakes the unique thread the deterministic order designates to take
    /// the token next, if one is eligible. Fast path: a targeted
    /// `notify_one` on that thread's parker. Reference path: the original
    /// `notify_all` broadcast on the shared condvar.
    ///
    /// Wake timing cannot change the schedule: eligibility is a monotone
    /// predicate of published clocks with a unique minimum, so a missed or
    /// extra wake only moves real time, never the grant order.
    fn wake_successor(&mut self, inner: &mut Inner) {
        if self.fast_sched() {
            if inner.token.is_none() {
                if let Some(w) = inner.table.successor() {
                    if w != self.tid {
                        self.sh.parkers[w.index()].notify_one();
                        self.cnt.targeted_wakes += 1;
                    }
                }
            }
        } else {
            self.cnt.broadcast_wakes += 1;
            self.herd_notify();
        }
    }

    /// Wakes a thread whose wake flag was just raised (lock hand-off,
    /// signal, join). Fast path: targeted parker notify. Reference path:
    /// no-op — the caller's existing broadcast covers it.
    fn notify_blocked(&mut self, w: Tid) {
        if self.fast_sched() {
            self.sh.parkers[w.index()].notify_one();
            self.cnt.targeted_wakes += 1;
        }
    }

    /// Spurious-wake injection support: stirs every waiter in the system
    /// (shared condvar and all parkers), so blocked threads must tolerate
    /// waking with nothing changed regardless of scheduler mode.
    fn stir_all(&self) {
        self.sh.cv.notify_all();
        for p in self.sh.parkers.iter() {
            p.notify_all();
        }
    }

    // INVARIANT: `ws` is `Some` from construction until `finish`/`abort`
    // consume the context; no protocol path touches memory after teardown
    // begins (teardown sets `suppress_inject` and never re-enters user
    // code), so this cannot fire on a live context.
    #[allow(clippy::expect_used)]
    #[inline]
    fn ws(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until finish")
    }

    /// Fires a fault-injection site (no-op unless a perturber is attached,
    /// see `dmt_api::perturb`), charging any returned virtual cycles as
    /// library overhead. The charge moves `v` only — never the logical
    /// clock — so token-grant order, and with it the schedule hash, is
    /// unaffected by construction.
    #[inline]
    fn perturb_hit(&mut self, site: PerturbSite) {
        let c = self.sh.cfg.perturb.hit(site, self.tid);
        if c > 0 {
            self.v += c;
            self.bd.lib += c;
        }
    }

    /// Advances the logical clock and virtual time for user work, firing
    /// publications and the ad-hoc chunk limit as thresholds pass.
    ///
    /// Large advances are split at publication thresholds: a hardware
    /// counter overflows *during* a long chunk, not at its end, and the
    /// interrupt's virtual timestamp must sit at the crossing point —
    /// otherwise a waiter's wake time inherits the whole chunk.
    #[inline]
    fn advance(&mut self, dclock: u64, dv: u64) {
        if self.clock.saturating_add(dclock) < self.next_pub {
            // Fast path: no threshold inside this advance.
            self.clock += dclock;
            self.v += dv;
            self.bd.chunk += dv;
        } else {
            let mut dclock = dclock;
            let mut dv = dv;
            while dclock > 0 {
                if self.clock >= self.next_pub {
                    // A clock jump (fast-forward, barrier) passed the
                    // threshold already; publish and recompute it.
                    self.maybe_publish();
                    continue;
                }
                if self.clock.saturating_add(dclock) < self.next_pub {
                    self.clock += dclock;
                    self.v += dv;
                    self.bd.chunk += dv;
                    break;
                }
                // Advance exactly to the threshold, charging virtual time
                // pro rata, and fire the publication there.
                let step = (self.next_pub - self.clock).min(dclock);
                let vstep = (dv * step).checked_div(dclock).unwrap_or(0);
                self.clock += step;
                self.v += vstep;
                self.bd.chunk += vstep;
                dclock -= step;
                dv -= vstep;
                self.maybe_publish();
            }
        }
        if let Some(lim) = self.sh.opts.chunk_limit {
            if self.clock - self.chunk_start_clock >= lim {
                self.forced_commit();
            }
        }
    }

    #[inline(never)]
    fn maybe_publish(&mut self) {
        if self.sh.opts.order != OrderPolicy::InstructionCount {
            // Round-robin eligibility ignores clocks entirely; publication
            // would be pure overhead, and the paper's RR systems have none.
            self.next_pub = u64::MAX;
            return;
        }
        if self.holding_token {
            // Nobody can pass the token order while we hold the token;
            // defer publication to the end of the coarsened chunk.
            self.next_pub = self.clock.saturating_add(self.ovf.interval().max(1));
            return;
        }
        let c = self.cost.overflow_irq;
        self.v += c;
        self.bd.lib += c;
        self.cnt.publications += 1;
        // Publications race with other threads' chunks: auxiliary, so the
        // schedule hash only covers token-serialized events.
        self.sh.cfg.trace.emit_aux(Event::Publish {
            tid: self.tid,
            clock: self.clock,
        });
        let sh = Arc::clone(&self.sh);
        let min_w;
        if self.fast_sched() {
            // Fast path: publish straight into our lock-free slot — no
            // global mutex on the publication hot path. The adaptive
            // threshold reads the head waiter's packed key instead of an
            // O(T) scan; it may miss a non-head waiter the reference scan
            // would find, which only shifts publication frequency — the
            // §3.2 contract makes that safe for determinism.
            let out = sh.slots.publish(self.tid, self.clock, self.v);
            min_w = if self.sh.opts.adaptive_overflow {
                out.head.map(|(c, _)| c).filter(|c| *c >= self.clock)
            } else {
                None
            };
            if let Some(w) = out.wake_hint {
                // Lock-then-notify: under the runtime mutex the hinted
                // waiter is either parked (our notify lands) or has not
                // yet evaluated its predicate (it will observe our SeqCst
                // slot store). Re-check eligibility under the lock so a
                // stale hint never wakes an ineligible thread.
                let mut inner = sh.inner.lock();
                if inner.token.is_none() && inner.table.eligible(w) {
                    sh.parkers[w.index()].notify_one();
                    self.cnt.targeted_wakes += 1;
                }
                drop(inner);
            }
        } else {
            let mut inner = sh.inner.lock();
            let hint = inner.table.publish(self.tid, self.clock, self.v);
            min_w = if self.sh.opts.adaptive_overflow {
                inner
                    .table
                    .min_waiting_other(self.tid)
                    .map(|(c, _)| c)
                    .filter(|c| *c >= self.clock)
            } else {
                None
            };
            drop(inner);
            if hint {
                self.cnt.broadcast_wakes += 1;
                self.herd_notify();
            }
        }
        // Publication timing is biased by the fault injector when one is
        // attached (forced early/late overflow); the §3.2 contract —
        // frequency affects real time only, never determinism — makes any
        // bias safe, and the stress harness asserts exactly that.
        let tid = self.tid;
        self.next_pub = self.ovf.next_threshold_biased(self.clock, min_w, |iv| {
            sh.cfg.perturb.overflow_interval(tid, iv)
        });
    }

    /// §2.7: forcibly end the current chunk so spinning threads observe
    /// remote commits.
    fn forced_commit(&mut self) {
        self.acquire_token_or_raise();
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        inner.table.resume(self.tid, self.clock, self.v);
        self.release_token_locked(&mut inner);
    }

    fn sync_prologue(&mut self) {
        let c = self.cost.sync_op;
        self.v += c;
        self.bd.lib += c;
    }

    /// As [`Ctx::acquire_token`], for protocol paths with infallible
    /// signatures: a shutdown while waiting unwinds to the thread
    /// boundary instead of propagating an error.
    fn acquire_token_or_raise(&mut self) -> bool {
        match self.acquire_token() {
            Ok(fresh) => fresh,
            Err(e) => self.raise(e),
        }
    }

    /// Arrives at a synchronization operation and acquires the global token.
    /// Returns `true` on a fresh acquisition and `false` when the token was
    /// already held by this thread (a coarsened operation). Fails with
    /// [`DmtError::Shutdown`] when the watchdog has abandoned the run —
    /// the only way a thread blocked on the token can ever observe that.
    fn acquire_token(&mut self) -> DmtResult<bool> {
        // Chunk-end counter read: a syscall to the kernel clock module, or
        // a cheap user-space read inside a coarsened chunk (§3.4).
        // Round-robin ordering needs no instruction counters at all.
        if self.sh.opts.order == OrderPolicy::InstructionCount {
            let read = if self.holding_token && self.sh.opts.user_counter_read {
                self.cost.counter_read_user
            } else {
                self.cost.counter_read_kernel
            };
            self.v += read;
            self.bd.lib += read;
            self.cnt.publications += 1;
        }
        let chunk_len = self.clock - self.last_sync_end_clock;
        self.coarsen.thread_est.update(chunk_len);
        if self.holding_token {
            return Ok(false);
        }
        // Pre-token-acquire delay: the thread is slow to arrive at the
        // sync point. Arrival timing must not matter — eligibility is a
        // function of published clocks and tids alone.
        self.perturb_hit(PerturbSite::TokenAcquire);

        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let arrival_clock = self.clock;
        inner.table.arrive_sync(self.tid, arrival_clock, self.v);
        // Our arrival published a bound; the head waiter may have become
        // eligible. Fast path: wake exactly that thread; reference path:
        // broadcast as before.
        self.wake_successor(&mut inner);
        // A token waiter parks on its own cache-padded condvar under the
        // fast scheduler, so a hand-off wakes one thread, not the herd.
        let waitcv: &dmt_api::sync::Condvar = if self.fast_sched() {
            &sh.parkers[self.tid.index()]
        } else {
            &sh.cv
        };
        let wait_from = self.v;
        loop {
            if inner.shutdown {
                return Err(DmtError::Shutdown);
            }
            if inner.token.is_none()
                && (self.admitted(&mut inner)
                    // Deliberate determinism bug for `stress --inject-bug`
                    // (Options::inject_eligibility_bug): grab a free token
                    // without the eligibility check, letting physical
                    // arrival order leak into the schedule — the bug class
                    // where one clockDepart/publication update is missed.
                    || sh.opts.inject_eligibility_bug)
            {
                break;
            }
            if sh.cfg.perturb.spurious_wake(self.tid) {
                // Spurious wake-up injection: every waiter in the runtime
                // (shared condvar and parkers) must tolerate being woken
                // with nothing changed.
                self.stir_all();
            }
            // In debug builds, a very long token wait dumps the scheduler
            // state: deadlocks here are runtime bugs, not program bugs.
            #[cfg(debug_assertions)]
            {
                let timed_out = waitcv
                    .wait_for(&mut inner, std::time::Duration::from_secs(5))
                    .timed_out();
                if timed_out && std::env::var_os("CONSEQ_DEBUG").is_some() {
                    eprintln!(
                        "[conseq] {} stuck at clock {} (token={:?}, census={:?})",
                        self.tid,
                        arrival_clock,
                        inner.token,
                        inner.table.census()
                    );
                    for i in 0..inner.next_tid {
                        let t = Tid(i);
                        eprintln!(
                            "[conseq]   {t}: state={:?} published={}",
                            inner.table.state(t),
                            inner.table.published(t)
                        );
                    }
                }
            }
            #[cfg(not(debug_assertions))]
            waitcv.wait(&mut inner);
            self.cnt.token_wake_loops += 1;
        }
        inner.token = Some(self.tid);
        if let Some(ctl) = &sh.replay {
            // Advance the grant script: the next scripted grantee becomes
            // admissible (and is woken by the broadcast on release).
            ctl.granted(self.tid.0);
        }
        // Mirror the grant into the lock-free flag so racing publishers
        // stop hinting wake-ups while the token is held.
        sh.slots.set_token_free(false);
        // Logical-progress signal for the watchdog: grants are the pulse.
        inner.grant_seq += 1;
        // Robustness drill: corrupt the fast scheduler once, at the first
        // grant at or past the requested one that has a head waiter to
        // lose, so the watchdog's detect-and-failover path is exercised
        // end to end (Options::inject_sched_corruption).
        if !inner.corruption_done
            && self
                .sh
                .opts
                .inject_sched_corruption
                .is_some_and(|n| inner.grant_seq >= n)
            && inner.table.corrupt_lose_head_waiter(self.tid)
        {
            inner.corruption_done = true;
            eprintln!(
                "[conseq] injected scheduler corruption at grant {}",
                inner.grant_seq
            );
        }
        if self.sh.opts.record_schedule {
            inner.schedule.push((self.tid, arrival_clock));
        }
        self.sh.cfg.trace.emit(Event::TokenAcquire {
            tid: self.tid,
            clock: arrival_clock,
        });
        // Deterministic wake time: the token is exclusive (chain off the
        // previous release), plus the policy-specific release event. Under
        // instruction count that is the final clock crossing of each
        // blocking thread, looked up in its publication history; under
        // round robin it is the event that handed us the turn (clock
        // crossings are meaningless there and would inject noise).
        let mut wake = inner.last_release_v;
        match self.sh.opts.order {
            OrderPolicy::InstructionCount => {
                wake = wake.max(inner.table.crossing_v(self.tid, arrival_clock));
            }
            OrderPolicy::RoundRobin => {
                wake = wake.max(inner.table.rr_turn_v());
            }
        }
        self.v = self.v.max(wake);
        self.bd.determ_wait += self.v - wait_from;
        let top = self.cost.token_op;
        self.v += top;
        self.bd.lib += top;
        self.cnt.token_acquisitions += 1;
        // Fast-forward (§3.5): catch up to the last token releaser.
        if self.sh.opts.fast_forward && self.clock < inner.last_release_clock {
            self.sh.cfg.trace.emit(Event::FastForward {
                tid: self.tid,
                from: self.clock,
                to: inner.last_release_clock,
            });
            self.clock = inner.last_release_clock;
        }
        // Coarsening budget adaptation (§3.1, multiplicative up/down).
        let same = inner.last_entrant == Some(self.tid);
        inner.last_entrant = Some(self.tid);
        if self.sh.opts.coarsening {
            self.coarsen.adapt(same);
        }
        drop(inner);
        self.holding_token = true;
        self.current_since_acquire = false;
        self.token_start_clock = self.clock;
        self.ovf.chunk_start();
        Ok(true)
    }

    /// Releases the token under the runtime lock, chaining virtual time to
    /// every waiter and advancing the round-robin turn if we hold it.
    fn release_token_locked(&mut self, inner: &mut Inner) {
        self.release_token_locked_ex(inner, true);
    }

    /// As [`release_token_locked`], optionally keeping the round-robin
    /// turn: consecutive spawns coalesce into one rotation slot, as real
    /// DThreads-family runtimes batch thread creation (otherwise every
    /// create would wait a full rotation behind freshly started workers).
    fn release_token_locked_ex(&mut self, inner: &mut Inner, advance_rr: bool) {
        debug_assert_eq!(inner.token, Some(self.tid), "token not held");
        self.sh.cfg.trace.emit(Event::TokenRelease {
            tid: self.tid,
            clock: self.clock,
        });
        let top = self.cost.token_op;
        self.v += top;
        self.bd.lib += top;
        inner.token = None;
        inner.last_release_clock = self.clock;
        inner.last_release_v = self.v;
        if advance_rr
            && self.sh.opts.order == OrderPolicy::RoundRobin
            && inner.table.rr_holder() == self.tid.index()
        {
            inner.table.rr_advance(self.v);
        }
        self.holding_token = false;
        if self.fast_sched() {
            // Publish the free token to racing lock-free publishers, then
            // hand off to the unique deterministic successor. The release
            // store of `token_free` and a publisher's slot store form the
            // classic store-buffer pair: at least one side observes the
            // other under SC, so no eligible waiter is ever left asleep.
            self.sh.slots.set_token_free(true);
            self.wake_successor(inner);
        } else {
            self.cnt.broadcast_wakes += 1;
            self.herd_notify();
        }
    }

    /// Commits dirty pages and pulls remote versions (Fig. 7 line 6:
    /// `convCommitAndUpdateMem`). Requires the token.
    fn commit_and_update(&mut self) {
        debug_assert!(self.holding_token);
        // Seeded panic injection: a thread dying mid-protocol while
        // holding the token is the hardest containment case.
        self.maybe_inject_panic(PanicSite::Commit);
        // Commit stall: the token holder dawdles before publishing its
        // dirty pages. Holding the token excludes every other committer,
        // so the stall stretches real and virtual time only.
        self.perturb_hit(PerturbSite::Commit);
        let sh = Arc::clone(&self.sh);
        let hint = self.pretwin_est.get() as usize;
        self.ws().set_pretwin_hint(hint);
        let cr = sh.seg.commit(self.ws(), None);
        self.pretwin_est.update(cr.pages as u64);
        let c = self.cost.commit_base
            + cr.pages as u64 * self.cost.page_commit
            + cr.merged as u64 * self.cost.page_merge;
        self.v += c;
        self.bd.commit += c;
        self.cnt.commits += 1;
        self.cnt.pages_committed += cr.pages as u64;
        self.cnt.pages_merged += cr.merged as u64;
        self.perturb_hit(PerturbSite::Update);
        let ur = sh.seg.update(self.ws());
        let u = self.cost.update_base + ur.pages_propagated * self.cost.page_update;
        self.v += u;
        self.bd.update += u;
        self.cnt.pages_propagated += ur.pages_propagated;
        // Both run under the token, so commit order and update extents are
        // part of the deterministic schedule.
        self.sh.cfg.trace.emit(Event::Commit {
            tid: self.tid,
            version: cr.version,
            pages: cr.pages,
            merged: cr.merged,
            page_set: cr.page_set,
        });
        self.sh.cfg.trace.emit(Event::Update {
            tid: self.tid,
            version: ur.new_base,
            pages: ur.pages_propagated,
        });
        let gr = sh.seg.gc(self.sh.cfg.gc_budget);
        // The single-threaded collector runs on the committing thread's
        // critical path (Fig. 12): charge its work like any other commit
        // bookkeeping.
        let g = gr.spent() as u64 * self.cost.gc_version;
        self.v += g;
        self.bd.commit += g;
        self.cnt.gc_versions_dropped += gr.dropped as u64;
        self.cnt.gc_versions_squashed += gr.squashed as u64;
        self.cnt.chunks += 1;
        self.chunk_start_clock = self.clock;
        self.current_since_acquire = true;
        if cr.pages > 0 && self.sh.cfg.track_lrc {
            let mut inner = self.sh.inner.lock();
            if let Some(l) = inner.lrc.as_mut() {
                l.on_commit(self.tid, cr.pages);
            }
        }
        if self.sh.cfg.witness.enabled() {
            self.witness_sample();
        }
    }

    /// One [`ResourceSample`](dmt_api::ResourceSample) for the attached
    /// witness: version-chain peak, live pages, longest clock history,
    /// trace-ring occupancy. Called under the token at every commit epoch,
    /// so samples land at deterministic schedule points; the observation
    /// itself costs no virtual time and cannot move the schedule.
    fn witness_sample(&self) {
        let clock_history = {
            let inner = self.sh.inner.lock();
            inner.table.max_history_len(self.sh.cfg.max_threads as u32)
        };
        self.sh.cfg.witness.observe(dmt_api::ResourceSample {
            retained_versions: self.sh.seg.retained_peak(),
            live_pages: self.sh.seg.tracker().live(),
            clock_history,
            trace_ring: self.sh.cfg.trace.occupancy(),
            pipeline_backlog: self.sh.seg.pipeline_backlog(),
        });
    }

    /// Ends a coarsenable synchronization operation: either retain the
    /// token across the next chunk (deferring commits — §3.1) or commit
    /// and release. While the token is retained no other thread can
    /// commit, so the holder's isolated view stays current and skipping
    /// the commit/update pair is sound.
    fn end_op(&mut self, predicted_next: u64) {
        self.last_sync_end_clock = self.clock;
        if self.sh.opts.coarsening {
            let consumed = self.clock.saturating_sub(self.token_start_clock);
            if self.coarsen.should_retain(consumed, predicted_next) {
                // A coarsened run must begin from a current view: commit
                // and update once at its first coordination phase, then
                // skip coordination for the merged phases that follow.
                if !self.current_since_acquire {
                    self.commit_and_update();
                }
                self.cnt.coarsened_chunks += 1;
                self.sh.cfg.trace.emit(Event::Coarsen {
                    tid: self.tid,
                    clock: self.clock,
                });
                let sh = Arc::clone(&self.sh);
                let mut inner = sh.inner.lock();
                inner.table.resume(self.tid, self.clock, self.v);
                if !self.fast_sched() {
                    // We still hold the token, so no waiter can proceed;
                    // the reference path broadcasts anyway (part of the
                    // thundering herd the fast path eliminates).
                    self.cnt.broadcast_wakes += 1;
                    self.herd_notify();
                }
                return;
            }
        }
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        inner.table.resume(self.tid, self.clock, self.v);
        self.release_token_locked(&mut inner);
    }

    /// Blocks until this thread's wake flag is raised, folding the waker's
    /// virtual time into ours. Caller must have departed and released the
    /// token; `inner` is consumed and re-acquired across the wait.
    ///
    /// Fails with the wake error a dying owner attached (poisoned mutex,
    /// dead condvar owner, poisoned rwlock) — delivered in the owner's
    /// deterministic drain order — or with [`DmtError::Shutdown`] when
    /// the watchdog abandoned the run.
    fn block_until_woken(
        &mut self,
        inner: &mut dmt_api::sync::MutexGuard<'_, Inner>,
    ) -> DmtResult<()> {
        let sh = Arc::clone(&self.sh);
        // Flag-blocked threads park on their own condvar under the fast
        // scheduler; the waker notifies exactly this thread.
        let waitcv: &dmt_api::sync::Condvar = if self.fast_sched() {
            &sh.parkers[self.tid.index()]
        } else {
            &sh.cv
        };
        let from = self.v;
        while !inner.threads[self.tid.index()].wake {
            if inner.shutdown {
                return Err(DmtError::Shutdown);
            }
            if sh.cfg.perturb.spurious_wake(self.tid) {
                // Spurious wake injection: blocked threads re-check their
                // wake flags, never act on the notification itself.
                self.stir_all();
            }
            #[cfg(debug_assertions)]
            {
                let timed_out = waitcv
                    .wait_for(inner, std::time::Duration::from_secs(5))
                    .timed_out();
                if timed_out && std::env::var_os("CONSEQ_DEBUG").is_some() {
                    eprintln!(
                        "[conseq] {} blocked awaiting wake (token={:?}, census={:?}, mutexes={:?})",
                        self.tid,
                        inner.token,
                        inner.table.census(),
                        inner
                            .mutexes
                            .iter()
                            .map(|m| (m.owner, m.waiters.clone()))
                            .collect::<Vec<_>>()
                    );
                }
                continue;
            }
            #[allow(unreachable_code)]
            waitcv.wait(inner);
        }
        let st = &mut inner.threads[self.tid.index()];
        st.wake = false;
        self.v = self.v.max(st.wake_v);
        self.bd.determ_wait += self.v - from;
        match st.wake_err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn resolve_mutex(&self, m: MutexId) -> MutexId {
        if self.sh.opts.single_global_lock {
            MutexId(0)
        } else {
            m
        }
    }

    /// Releases mutex `m`'s state and wakes its earliest waiter, if any.
    /// Caller holds the token and the runtime lock. Returns whether a
    /// waiter was woken.
    fn unlock_state(&mut self, inner: &mut Inner, m: MutexId) -> bool {
        let mst = &mut inner.mutexes[m.index()];
        assert_eq!(
            mst.owner,
            Some(self.tid),
            "{} unlocking {m} it does not hold",
            self.tid
        );
        mst.owner = None;
        let cs_len = self.clock.saturating_sub(mst.cs_start_clock);
        mst.cs_est.update(cs_len);
        let woke = mst.waiters.pop_front();
        self.sh.cfg.trace.emit(Event::MutexUnlock {
            tid: self.tid,
            mutex: m,
            woke,
        });
        if let Some(w) = woke {
            let wk = self.cost.wakeup;
            self.v += wk;
            self.bd.lib += wk;
            inner.threads[w.index()].wake = true;
            inner.threads[w.index()].wake_v = self.v;
            let saved = inner.threads[w.index()].saved_clock;
            inner.table.reactivate(w, saved, self.v);
            self.notify_blocked(w);
        }
        if let Some(l) = inner.lrc.as_mut() {
            l.on_release(self.tid, LrcObject::Mutex(m.0));
        }
        woke.is_some()
    }

    /// Wakes `w` out of a blocked protocol wait with an error instead of
    /// a grant. Caller holds the token and the runtime lock; callers
    /// drain queues in FIFO order, so error delivery order is exactly
    /// the order a healthy owner would have granted in — deterministic.
    fn wake_with_err(&mut self, inner: &mut Inner, w: Tid, e: DmtError) {
        let wk = self.cost.wakeup;
        self.v += wk;
        self.bd.lib += wk;
        let st = &mut inner.threads[w.index()];
        st.wake = true;
        st.wake_v = self.v;
        st.wake_err = Some(e);
        let saved = st.saved_clock;
        inner.table.reactivate(w, saved, self.v);
        self.notify_blocked(w);
    }

    /// A null synchronization operation performed at thread birth under
    /// round-robin ordering (see `runtime::worker_loop`).
    pub(crate) fn birth_sync(&mut self) {
        self.sync_prologue();
        self.acquire_token_or_raise();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        inner.table.resume(self.tid, self.clock, self.v);
        self.release_token_locked(&mut inner);
        drop(inner);
        self.last_sync_end_clock = self.clock;
    }

    /// The §2.7 atomic-operation protocol: acquire the token, bring the
    /// view current, apply the read-modify-write, and commit before any
    /// other thread can take the token. Returns the previous value.
    fn atomic_rmw(&mut self, addr: Addr, f: impl FnOnce(u64) -> u64) -> u64 {
        self.sync_prologue();
        let fresh = self.acquire_token_or_raise();
        if fresh {
            // A coarsened (retained-token) view is already current.
            self.commit_and_update();
        }
        let old = self.ld_u64(addr);
        self.st_u64(addr, f(old));
        self.commit_and_update();
        self.end_op(self.coarsen.thread_est.get());
        old
    }

    /// Hands the rwlock to the head of its queue: one writer, or every
    /// leading reader — granting directly (the woken thread owns the lock
    /// when it wakes). Caller holds the token and the runtime lock.
    fn rw_wake_head(&mut self, inner: &mut Inner, l: RwLockId) {
        loop {
            let Some(&(w, is_writer)) = inner.rwlocks[l.index()].waiters.front() else {
                return;
            };
            {
                let st = &mut inner.rwlocks[l.index()];
                if is_writer {
                    if st.readers > 0 || st.writer.is_some() {
                        return;
                    }
                    st.waiters.pop_front();
                    st.writer = Some(w);
                } else {
                    if st.writer.is_some() {
                        return;
                    }
                    st.waiters.pop_front();
                    st.readers += 1;
                }
            }
            let wk = self.cost.wakeup;
            self.v += wk;
            self.bd.lib += wk;
            inner.threads[w.index()].wake = true;
            inner.threads[w.index()].wake_v = self.v;
            let saved = inner.threads[w.index()].saved_clock;
            inner.table.reactivate(w, saved, self.v);
            self.notify_blocked(w);
            // Direct hand-off: the grant happens here, under the waker's
            // token, so it is a schedule event of the waker's turn.
            self.sh.cfg.trace.emit(Event::RwAcquire {
                tid: w,
                lock: l,
                writer: is_writer,
            });
            if is_writer {
                return;
            }
            // Keep granting consecutive readers.
        }
    }

    /// A queued rwlock waiter was granted by its waker: take the token to
    /// refresh the isolated view (acquire semantics), then continue.
    fn rw_post_grant(&mut self) {
        let _ = self.acquire_token_or_raise();
        self.commit_and_update();
        self.finish_rw_op();
    }

    /// Ends an rwlock operation that was granted: these ops always commit
    /// and release (they never coarsen — wakes must stay fair, and reader
    /// concurrency is the point).
    fn finish_rw_op(&mut self) {
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        inner.table.resume(self.tid, self.clock, self.v);
        self.release_token_locked(&mut inner);
        drop(inner);
        self.last_sync_end_clock = self.clock;
    }

    /// Exit protocol: final commit, wake joiners, leave the clock table,
    /// and — while still holding the token, so pool contents are a
    /// deterministic function of the token order — park this worker's
    /// workspace in the thread pool (§3.3).
    pub(crate) fn finish(mut self) {
        // Teardown runs protocol steps (commit, token ops) that double as
        // injection sites; firing here would unwind out of a consumed
        // context, so the exit protocol is injection-free.
        self.suppress_inject = true;
        self.sync_prologue();
        if self.acquire_token().is_err() {
            // Watchdog shutdown raced our exit: leave quietly.
            self.abort_quiet();
            return;
        }
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let joiners = std::mem::take(&mut inner.threads[self.tid.index()].joiners);
        for j in joiners {
            let wk = self.cost.wakeup;
            self.v += wk;
            self.bd.lib += wk;
            inner.threads[j.index()].wake = true;
            inner.threads[j.index()].wake_v = self.v;
            let saved = inner.threads[j.index()].saved_clock;
            inner.table.reactivate(j, saved, self.v);
            self.notify_blocked(j);
        }
        if let Some(l) = inner.lrc.as_mut() {
            l.on_release(self.tid, LrcObject::Thread(self.tid.0));
        }
        let st = &mut inner.threads[self.tid.index()];
        st.finished = true;
        st.exit_clock = self.clock;
        st.exit_v = self.v;
        self.sh.cfg.trace.emit(Event::Exit {
            tid: self.tid,
            clock: self.clock,
        });
        inner.table.finish(self.tid, self.v);
        // INVARIANT: `finish` consumes the context; only `finish`/`abort`
        // take the workspace, and each runs at most once.
        #[allow(clippy::expect_used)]
        let ws = self.ws.take().expect("workspace present at finish");
        match self.pool_tx.take() {
            Some(tx) if self.sh.opts.thread_pool => {
                inner.pool.push(crate::shared::PoolEntry { tx, ws });
            }
            _ => {
                sh.seg.detach(self.tid);
                drop(ws);
            }
        }
        self.release_token_locked(&mut inner);
        inner.live -= 1;
        inner.max_exit_v = inner.max_exit_v.max(self.v);
        inner.reports.push((self.tid, self.bd));
        let mut cnt = *self.cnt;
        cnt.lrc_pages_propagated = 0; // aggregated once, from the tracker
        inner.counters += cnt;
        sh.cv.notify_all();
    }

    /// Classifies a caught unwind payload from the thread boundary and
    /// contains it. [`DmtError::Shutdown`] unwinds take the quiet path —
    /// the watchdog already owns the diagnosis and the schedule is being
    /// abandoned; everything else runs the deterministic containment
    /// protocol under the token.
    pub(crate) fn dispatch_panic(self, payload: Box<dyn std::any::Any + Send>) {
        if let Some(c) = payload.downcast_ref::<ContainedError>() {
            if c.0 == DmtError::Shutdown {
                self.abort_quiet();
            } else {
                let msg = c.0.to_string();
                self.abort(msg);
            }
            return;
        }
        if let Some(ip) = payload.downcast_ref::<dmt_api::InjectedPanic>() {
            let msg = ip.to_string();
            self.abort(msg);
            return;
        }
        let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic (non-string payload)".to_string()
        };
        self.abort(msg);
    }

    /// Contains a workload panic: runs the deterministic departure
    /// protocol, and if that protocol itself fails (double panic, or a
    /// shutdown racing in), degrades to the quiet teardown so the thread
    /// always retires exactly once.
    pub(crate) fn abort(mut self, msg: String) {
        self.suppress_inject = true;
        let outcome = {
            let this = std::panic::AssertUnwindSafe(&mut self);
            let m = msg.clone();
            std::panic::catch_unwind(move || {
                let this = this;
                this.0.abort_protocol(&m)
            })
        };
        if !matches!(outcome, Ok(Ok(()))) {
            self.abort_quiet();
        }
    }

    /// The deterministic containment protocol (clockDepart for a dying
    /// thread). Runs entirely under the token, so every effect — poison
    /// delivery order, joiner wake order, the hashed `ThreadPanic` event
    /// — is a function of the deterministic schedule and reproduces
    /// bit-for-bit when the same panic recurs.
    fn abort_protocol(&mut self, msg: &str) -> DmtResult<()> {
        if !self.holding_token {
            self.sync_prologue();
            self.acquire_token()?;
        }
        // TSO: stores retired before the panic happened; publish them and
        // bring the view current so the workspace can be pooled clean.
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        self.sh.cfg.trace.emit(Event::ThreadPanic {
            tid: self.tid,
            clock: self.clock,
        });

        // Poison every mutex we own. Queued waiters are drained FIFO —
        // the order a healthy unlock sequence would have granted in —
        // and condvar waiters that released a now-poisoned mutex can
        // never legally reacquire it, so they get the owner-died error.
        for i in 0..inner.mutexes.len() {
            if inner.mutexes[i].owner != Some(self.tid) {
                continue;
            }
            let m = MutexId(i as u32);
            inner.mutexes[i].owner = None;
            inner.mutexes[i].poisoned = Some(self.tid);
            let drained: Vec<Tid> = inner.mutexes[i].waiters.drain(..).collect();
            for w in drained {
                self.wake_with_err(
                    &mut inner,
                    w,
                    DmtError::MutexPoisoned {
                        mutex: m,
                        by: self.tid,
                    },
                );
            }
            for ci in 0..inner.conds.len() {
                let all = std::mem::take(&mut inner.conds[ci].waiters);
                let mut dead = Vec::new();
                for (w, wm) in all {
                    if wm == m {
                        dead.push(w);
                    } else {
                        inner.conds[ci].waiters.push_back((w, wm));
                    }
                }
                for w in dead {
                    self.wake_with_err(
                        &mut inner,
                        w,
                        DmtError::CondOwnerDied {
                            cond: CondId(ci as u32),
                            mutex: m,
                            by: self.tid,
                        },
                    );
                }
            }
        }

        // Poison rwlocks we hold exclusively. A dying *reader* cannot be
        // attributed (holds are a count, not a set), so its count leaks;
        // the watchdog diagnoses the resulting stall (ROBUSTNESS.md).
        for i in 0..inner.rwlocks.len() {
            if inner.rwlocks[i].writer != Some(self.tid) {
                continue;
            }
            let l = RwLockId(i as u32);
            inner.rwlocks[i].writer = None;
            inner.rwlocks[i].poisoned = Some(self.tid);
            let drained: Vec<Tid> = inner.rwlocks[i].waiters.drain(..).map(|(w, _)| w).collect();
            for w in drained {
                self.wake_with_err(
                    &mut inner,
                    w,
                    DmtError::RwLockPoisoned {
                        lock: l,
                        by: self.tid,
                    },
                );
            }
        }

        // Un-arrive from any barrier mid-protocol deaths registered with:
        // a dead thread must never be reactivated by a barrier open. (The
        // generation then waits for an arrival that cannot come; either
        // the break below fires or the watchdog diagnoses the stall.)
        for bi in 0..inner.barriers.len() {
            inner.barriers[bi].arrived.retain(|t| *t != self.tid);
        }
        // Break barriers that can never fill once we are gone (fewer
        // surviving threads than parties). Arrived waiters left the clock
        // order (clockDepart); put them back so they can observe the
        // broken flag and run their own containment.
        let survivors = inner.live.saturating_sub(1) as usize;
        for bi in 0..inner.barriers.len() {
            if inner.barriers[bi].broken || inner.barriers[bi].parties <= survivors {
                continue;
            }
            inner.barriers[bi].broken = true;
            let arrived = inner.barriers[bi].arrived.clone();
            for t in arrived {
                if t != self.tid && matches!(inner.table.state(t), ThreadState::Departed) {
                    let saved = inner.threads[t.index()].saved_clock;
                    inner.table.reactivate(t, saved, self.v);
                }
            }
        }

        // Retire the thread: joiners wake normally and observe `panicked`
        // under their own token turn (deterministic ThreadPanicked).
        let joiners = std::mem::take(&mut inner.threads[self.tid.index()].joiners);
        for j in joiners {
            let wk = self.cost.wakeup;
            self.v += wk;
            self.bd.lib += wk;
            inner.threads[j.index()].wake = true;
            inner.threads[j.index()].wake_v = self.v;
            let saved = inner.threads[j.index()].saved_clock;
            inner.table.reactivate(j, saved, self.v);
            self.notify_blocked(j);
        }
        if let Some(l) = inner.lrc.as_mut() {
            l.on_release(self.tid, LrcObject::Thread(self.tid.0));
        }
        let st = &mut inner.threads[self.tid.index()];
        st.finished = true;
        st.panicked = true;
        st.panic_msg = msg.to_string();
        st.exit_clock = self.clock;
        st.exit_v = self.v;
        inner.panics.push((self.tid, msg.to_string()));
        inner.table.finish(self.tid, self.v);
        if let Some(ws) = self.ws.take() {
            match self.pool_tx.take() {
                Some(tx) if self.sh.opts.thread_pool => {
                    // The view was committed and updated above: the pooled
                    // workspace is as clean as one parked by `finish`.
                    inner.pool.push(crate::shared::PoolEntry { tx, ws });
                }
                _ => {
                    sh.seg.detach(self.tid);
                    drop(ws);
                }
            }
        }
        self.release_token_locked(&mut inner);
        inner.live -= 1;
        inner.max_exit_v = inner.max_exit_v.max(self.v);
        inner.reports.push((self.tid, self.bd));
        let mut cnt = *self.cnt;
        cnt.lrc_pages_propagated = 0;
        inner.counters += cnt;
        self.torn_down = true;
        drop(inner);
        // Barrier-phase waiters and the runtime's teardown loop wait on
        // the shared condvar regardless of scheduler mode.
        sh.cv.notify_all();
        self.herd_notify();
        Ok(())
    }

    /// Last-resort teardown: no hashed events, no token protocol. Used on
    /// shutdown (the watchdog owns the diagnosis and the schedule is
    /// abandoned) and when the containment protocol itself fails. Purges
    /// this thread from every wait queue so no successor computation can
    /// ever select a dead thread, then retires it.
    pub(crate) fn abort_quiet(mut self) {
        if self.torn_down {
            return;
        }
        self.torn_down = true;
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let me = self.tid;
        for m in inner.mutexes.iter_mut() {
            m.waiters.retain(|w| *w != me);
        }
        for c in inner.conds.iter_mut() {
            c.waiters.retain(|(w, _)| *w != me);
        }
        for r in inner.rwlocks.iter_mut() {
            r.waiters.retain(|(w, _)| *w != me);
        }
        if inner.token == Some(me) {
            inner.token = None;
            sh.slots.set_token_free(true);
        }
        self.holding_token = false;
        let st = &mut inner.threads[me.index()];
        st.finished = true;
        st.panicked = true;
        if st.panic_msg.is_empty() {
            st.panic_msg = "shutdown".to_string();
        }
        st.exit_clock = self.clock;
        st.exit_v = self.v;
        inner.table.finish(me, self.v);
        if let Some(ws) = self.ws.take() {
            sh.seg.detach(me);
            drop(ws);
        }
        inner.live -= 1;
        inner.max_exit_v = inner.max_exit_v.max(self.v);
        inner.reports.push((me, self.bd));
        let mut cnt = *self.cnt;
        cnt.lrc_pages_propagated = 0;
        inner.counters += cnt;
        drop(inner);
        sh.cv.notify_all();
        for p in sh.parkers.iter() {
            p.notify_all();
        }
    }
}

impl Ctx {
    /// Deterministic blocking mutex acquisition (Fig. 7) — or, with
    /// `Options::polling_locks`, Kendo's §4.1 polling variant: on failure
    /// the thread keeps its place in the clock order by bumping its clock
    /// past the contention point and retrying, never departing.
    ///
    /// Fails deterministically when the mutex is poisoned (a previous
    /// owner panicked): the error is delivered under this thread's own
    /// token grant, so delivery order is the token-grant order.
    fn lock_inner(&mut self, m: MutexId) -> DmtResult<()> {
        let m = self.resolve_mutex(m);
        self.maybe_inject_panic(PanicSite::Lock);
        self.sync_prologue();
        loop {
            let fresh = self.acquire_token()?;
            let sh = Arc::clone(&self.sh);
            let mut inner = sh.inner.lock();
            if let Some(by) = inner.mutexes[m.index()].poisoned {
                drop(inner);
                // Leave cleanly: publish buffered stores (a coarsened
                // chunk may hold deferred commits) and release.
                self.commit_and_update();
                let mut inner = sh.inner.lock();
                inner.table.resume(self.tid, self.clock, self.v);
                self.release_token_locked(&mut inner);
                drop(inner);
                self.last_sync_end_clock = self.clock;
                return Err(DmtError::MutexPoisoned { mutex: m, by });
            }
            let mst = &mut inner.mutexes[m.index()];
            if mst.owner.is_none() {
                mst.owner = Some(self.tid);
                mst.cs_start_clock = self.clock;
                mst.tickets += 1;
                let ticket = mst.tickets;
                let predicted = mst.cs_est.get();
                self.cnt.lock_acquires += 1;
                self.sh.cfg.trace.emit(Event::MutexLock {
                    tid: self.tid,
                    mutex: m,
                    ticket,
                });
                if let Some(l) = inner.lrc.as_mut() {
                    l.on_acquire(self.tid, LrcObject::Mutex(m.0));
                }
                drop(inner);
                if fresh {
                    // Fig. 7 line 6: a fresh acquisition must pull the
                    // latest committed state before the critical section.
                    // A coarsened (token-retained) acquisition is already
                    // current: nobody else could commit meanwhile.
                    self.commit_and_update();
                }
                self.end_op(predicted);
                return Ok(());
            }
            drop(inner);
            if sh.opts.polling_locks {
                // Kendo §4.1: release the token, add the tuned increment
                // to our clock so the next-lowest thread can proceed, and
                // poll again. Progress for others is preserved, but every
                // retry costs a full token round trip — the latency the
                // paper's blocking design eliminates.
                let mut inner = sh.inner.lock();
                inner.table.resume(self.tid, self.clock, self.v);
                self.release_token_locked(&mut inner);
                drop(inner);
                let bump = sh.opts.polling_increment.max(1);
                self.advance(bump, bump / 4);
                continue;
            }
            // Lock held: commit buffered writes (we may hold data of locks
            // we released inside a coarsened chunk, and blocking with an
            // unpublished store could starve ad-hoc readers forever), then
            // remove ourselves from GMIC consideration (clockDepart) and
            // queue on the lock (Fig. 7 lines 10-13).
            self.commit_and_update();
            let mut inner = sh.inner.lock();
            inner.mutexes[m.index()].waiters.push_back(self.tid);
            inner.threads[self.tid.index()].saved_clock = self.clock;
            self.sh.cfg.trace.emit(Event::MutexBlock {
                tid: self.tid,
                mutex: m,
            });
            self.sh.cfg.trace.emit(Event::Depart {
                tid: self.tid,
                clock: self.clock,
            });
            inner.table.depart(self.tid, self.v);
            self.release_token_locked(&mut inner);
            self.block_until_woken(&mut inner)?;
        }
    }

    /// Fallible condition wait. Fails with [`DmtError::CondOwnerDied`]
    /// when the owner of the associated mutex panics while we wait (the
    /// mutex can never legally be reacquired), or with the poison error
    /// from reacquisition itself.
    fn cond_wait_inner(&mut self, c: CondId, m: MutexId) -> DmtResult<()> {
        let m = self.resolve_mutex(m);
        self.sync_prologue();
        self.cnt.cond_waits += 1;
        self.acquire_token()?;
        // Condition operations end any coarsened chunk (§3.1).
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let _ = self.unlock_state(&mut inner, m);
        inner.conds[c.index()].waiters.push_back((self.tid, m));
        inner.threads[self.tid.index()].saved_clock = self.clock;
        self.sh.cfg.trace.emit(Event::CondWait {
            tid: self.tid,
            cond: c,
            mutex: m,
        });
        self.sh.cfg.trace.emit(Event::Depart {
            tid: self.tid,
            clock: self.clock,
        });
        inner.table.depart(self.tid, self.v);
        self.release_token_locked(&mut inner);
        self.block_until_woken(&mut inner)?;
        if let Some(l) = inner.lrc.as_mut() {
            l.on_acquire(self.tid, LrcObject::Cond(c.0));
        }
        drop(inner);
        self.last_sync_end_clock = self.clock;
        // Re-acquire the mutex before returning, as pthreads does.
        self.lock_inner(m)
    }

    /// Fallible join. Fails with [`DmtError::ThreadPanicked`] when the
    /// target's job panicked — observed under this thread's own token
    /// grant, after folding the target's exit time, so the error is as
    /// deterministic as a successful join.
    fn join_inner(&mut self, t: Tid) -> DmtResult<()> {
        assert_ne!(t, self.tid, "thread joining itself");
        self.sync_prologue();
        loop {
            self.acquire_token()?;
            let sh = Arc::clone(&self.sh);
            let mut inner = sh.inner.lock();
            assert!(
                (t.index()) < inner.threads.len(),
                "join on unknown thread {t}"
            );
            if inner.threads[t.index()].finished {
                let ev = inner.threads[t.index()].exit_v;
                let ec = inner.threads[t.index()].exit_clock;
                self.v = self.v.max(ev);
                if sh.opts.fast_forward {
                    self.clock = self.clock.max(ec);
                }
                let panicked = inner.threads[t.index()]
                    .panicked
                    .then(|| inner.threads[t.index()].panic_msg.clone());
                if let Some(l) = inner.lrc.as_mut() {
                    l.on_acquire(self.tid, LrcObject::Thread(t.0));
                }
                self.sh.cfg.trace.emit(Event::Join {
                    tid: self.tid,
                    target: t,
                });
                drop(inner);
                // Join is an acquire: pull the exited thread's commits.
                self.commit_and_update();
                let mut inner = sh.inner.lock();
                inner.table.resume(self.tid, self.clock, self.v);
                self.release_token_locked(&mut inner);
                drop(inner);
                self.last_sync_end_clock = self.clock;
                return match panicked {
                    Some(msg) => Err(DmtError::ThreadPanicked { tid: t, msg }),
                    None => Ok(()),
                };
            }
            drop(inner);
            // Commit before blocking: a joiner may hold the only copy of
            // data an ad-hoc reader is spinning on.
            self.commit_and_update();
            let mut inner = sh.inner.lock();
            inner.threads[t.index()].joiners.push(self.tid);
            inner.threads[self.tid.index()].saved_clock = self.clock;
            self.sh.cfg.trace.emit(Event::Depart {
                tid: self.tid,
                clock: self.clock,
            });
            inner.table.depart(self.tid, self.v);
            self.release_token_locked(&mut inner);
            self.block_until_woken(&mut inner)?;
        }
    }
}

impl ThreadCtx for Ctx {
    fn tid(&self) -> Tid {
        self.tid
    }

    fn tick(&mut self, n: u64) {
        self.advance(n, n);
    }

    fn vtime(&self) -> u64 {
        self.v
    }

    fn logical_clock(&self) -> u64 {
        self.clock
    }

    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.ws().read_bytes(addr, buf);
        let w = buf.len().div_ceil(8) as u64;
        self.advance(w, self.cost.mem_access(buf.len()));
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        let faults = self.ws().write_bytes(addr, data) as u64;
        if faults > 0 {
            let fc = faults * self.cost.fault;
            self.v += fc;
            self.bd.fault += fc;
            self.cnt.faults += faults;
            // Page-fault jitter: copy-on-write handling takes arbitrarily
            // long without affecting what the fault produced.
            self.perturb_hit(PerturbSite::Fault);
        }
        let w = data.len().div_ceil(8) as u64;
        self.advance(w, self.cost.mem_access(data.len()));
    }

    fn ld_u64(&mut self, addr: Addr) -> u64 {
        let v = self.ws().ld_u64(addr);
        self.advance(1, self.cost.mem_access(8));
        v
    }

    fn st_u64(&mut self, addr: Addr, val: u64) {
        let faults = self.ws().st_u64(addr, val) as u64;
        if faults > 0 {
            let fc = faults * self.cost.fault;
            self.v += fc;
            self.bd.fault += fc;
            self.cnt.faults += faults;
            self.perturb_hit(PerturbSite::Fault);
        }
        self.advance(1, self.cost.mem_access(8));
    }

    fn mutex_lock(&mut self, m: MutexId) {
        if let Err(e) = self.lock_inner(m) {
            self.raise(e);
        }
    }

    fn try_mutex_lock(&mut self, m: MutexId) -> DmtResult<()> {
        self.lock_inner(m)
    }

    /// Deterministic mutex release (Fig. 9).
    fn mutex_unlock(&mut self, m: MutexId) {
        let m = self.resolve_mutex(m);
        self.sync_prologue();
        self.acquire_token_or_raise();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let woke = self.unlock_state(&mut inner, m);
        if !self.fast_sched() {
            // Reference herd: broadcast even though the woken waiter was
            // already flagged; the fast path's unlock_state notified the
            // one parker that matters.
            self.cnt.broadcast_wakes += 1;
            self.herd_notify();
        }
        drop(inner);
        if woke {
            // A woken waiter must get a fair shot at the lock: retaining
            // the token here would let us re-acquire the lock before the
            // waiter can ever contend (a deterministic livelock).
            self.commit_and_update();
            let mut inner = sh.inner.lock();
            inner.table.resume(self.tid, self.clock, self.v);
            self.release_token_locked(&mut inner);
            return;
        }
        let predicted = self.coarsen.thread_est.get();
        self.end_op(predicted);
    }

    fn cond_wait(&mut self, c: CondId, m: MutexId) {
        if let Err(e) = self.cond_wait_inner(c, m) {
            self.raise(e);
        }
    }

    fn try_cond_wait(&mut self, c: CondId, m: MutexId) -> DmtResult<()> {
        self.cond_wait_inner(c, m)
    }

    fn cond_signal(&mut self, c: CondId) {
        self.sync_prologue();
        self.acquire_token_or_raise();
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let woken = inner.conds[c.index()].waiters.pop_front().map(|(w, _)| w);
        self.sh.cfg.trace.emit(Event::CondSignal {
            tid: self.tid,
            cond: c,
            woken,
        });
        if let Some(w) = woken {
            let wk = self.cost.wakeup;
            self.v += wk;
            self.bd.lib += wk;
            inner.threads[w.index()].wake = true;
            inner.threads[w.index()].wake_v = self.v;
            let saved = inner.threads[w.index()].saved_clock;
            inner.table.reactivate(w, saved, self.v);
            self.notify_blocked(w);
        }
        if let Some(l) = inner.lrc.as_mut() {
            l.on_release(self.tid, LrcObject::Cond(c.0));
        }
        inner.table.resume(self.tid, self.clock, self.v);
        self.release_token_locked(&mut inner);
        drop(inner);
        self.last_sync_end_clock = self.clock;
    }

    fn cond_broadcast(&mut self, c: CondId) {
        self.sync_prologue();
        self.acquire_token_or_raise();
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let mut woken = 0u32;
        while let Some((w, _)) = inner.conds[c.index()].waiters.pop_front() {
            let wk = self.cost.wakeup;
            self.v += wk;
            self.bd.lib += wk;
            inner.threads[w.index()].wake = true;
            inner.threads[w.index()].wake_v = self.v;
            let saved = inner.threads[w.index()].saved_clock;
            inner.table.reactivate(w, saved, self.v);
            self.notify_blocked(w);
            woken += 1;
        }
        self.sh.cfg.trace.emit(Event::CondBroadcast {
            tid: self.tid,
            cond: c,
            woken,
        });
        if let Some(l) = inner.lrc.as_mut() {
            l.on_release(self.tid, LrcObject::Cond(c.0));
        }
        inner.table.resume(self.tid, self.clock, self.v);
        self.release_token_locked(&mut inner);
        drop(inner);
        self.last_sync_end_clock = self.clock;
    }

    /// Deterministic barrier with two-phase parallel commit (§4.2).
    ///
    /// Raises [`DmtError::BarrierBroken`] (contained at the thread
    /// boundary) when a participant panicked such that the barrier can
    /// never fill: stragglers cascade out instead of waiting forever.
    fn barrier_wait(&mut self, b: BarrierId) {
        // Injection fires before arrival registration, so a dying thread
        // is never counted as an arriver (containment needs no barrier
        // unwind protocol).
        self.maybe_inject_panic(PanicSite::Barrier);
        self.sync_prologue();
        self.cnt.barrier_waits += 1;
        // Barrier-phase delay: a straggler arriving arbitrarily late. The
        // arrival set is fixed by the program (parties), so only waiting
        // time can change.
        self.perturb_hit(PerturbSite::Barrier);
        let fresh = self.acquire_token_or_raise();
        if !fresh {
            // Arriving out of a coarsened run: data protected by locks we
            // released (with commits deferred) is still buffered, and we
            // are about to give the token up. Registration in the parallel
            // commit is not visible until install, so flush properly now.
            self.commit_and_update();
        }
        let sh = Arc::clone(&self.sh);
        let parallel = sh.opts.parallel_barrier;

        // Arrival: register under the token. Wait out stragglers of the
        // previous generation first (they do not need the token to leave).
        let (gen, parties, is_last, pc) = {
            let mut inner = sh.inner.lock();
            loop {
                if inner.barriers[b.index()].broken || inner.shutdown {
                    let e = if inner.shutdown {
                        DmtError::Shutdown
                    } else {
                        DmtError::BarrierBroken { barrier: b }
                    };
                    // We hold the token: leave the order cleanly before
                    // unwinding to containment.
                    inner.table.resume(self.tid, self.clock, self.v);
                    self.release_token_locked(&mut inner);
                    drop(inner);
                    self.raise(e);
                }
                if inner.barriers[b.index()].phase == BarPhase::Collecting {
                    break;
                }
                sh.cv.wait(&mut inner);
            }
            if let Some(l) = inner.lrc.as_mut() {
                l.on_release(self.tid, LrcObject::Barrier(b.0));
            }
            let bst = &mut inner.barriers[b.index()];
            bst.arrived.push(self.tid);
            bst.max_arrival_clock = bst.max_arrival_clock.max(self.clock);
            let pc = parallel.then(|| {
                Arc::clone(
                    bst.pc
                        .get_or_insert_with(|| Arc::new(conversion::ParallelCommit::new())),
                )
            });
            self.sh.cfg.trace.emit(Event::BarrierArrive {
                tid: self.tid,
                barrier: b,
                gen: bst.gen,
            });
            (bst.gen, bst.parties, bst.arrived.len() == bst.parties, pc)
        };

        // Phase 1 (token-serialized): register dirty pages, or commit
        // serially when the parallel barrier is disabled (DWC behaviour).
        let my_idx = if let Some(pc) = &pc {
            let (idx, registered) = pc.register(&sh.seg, self.ws(), None);
            let c = self.cost.commit_base / 2 + registered as u64 * self.cost.page_register;
            self.v += c;
            self.bd.commit += c;
            self.cnt.commits += 1;
            Some(idx)
        } else {
            self.commit_and_update();
            None
        };

        // Hand off: the last arriver keeps the token through phase 2 and
        // installation so no foreign commit can interleave; earlier
        // arrivers depart and wait for the phase change.
        {
            let mut inner = sh.inner.lock();
            if is_last {
                let bst = &mut inner.barriers[b.index()];
                if parallel {
                    // INVARIANT: `pc` is `Some` iff `parallel` (set at
                    // arrival under the same flag).
                    #[allow(clippy::expect_used)]
                    pc.as_ref().expect("parallel pc").seal(&sh.seg);
                    bst.phase = BarPhase::Merging;
                    bst.merge_start_v = self.v;
                } else {
                    bst.phase = BarPhase::Installed;
                    bst.install_v = self.v;
                    bst.install_version = sh.seg.latest_id();
                    self.sh.cfg.trace.emit(Event::BarrierOpen {
                        tid: self.tid,
                        barrier: b,
                        gen,
                        install_version: bst.install_version,
                    });
                    for _ in 0..bst.parties {
                        sh.seg.pin(bst.install_version);
                    }
                    // Reactivate every departed participant here, in
                    // arrival order, while we hold the token: reactivation
                    // mutates the deterministic order (round-robin turn),
                    // so it must not happen at each leaver's racy wake-up.
                    let others: Vec<Tid> = bst
                        .arrived
                        .iter()
                        .copied()
                        .filter(|t| *t != self.tid)
                        .collect();
                    let ff = bst.max_arrival_clock;
                    for t in others {
                        inner.table.reactivate(t, ff, self.v);
                    }
                    inner.table.resume(self.tid, self.clock, self.v);
                    self.release_token_locked(&mut inner);
                }
                sh.cv.notify_all();
            } else {
                inner.threads[self.tid.index()].saved_clock = self.clock;
                self.sh.cfg.trace.emit(Event::Depart {
                    tid: self.tid,
                    clock: self.clock,
                });
                inner.table.depart(self.tid, self.v);
                self.release_token_locked(&mut inner);
                let from = self.v;
                loop {
                    if inner.barriers[b.index()].broken || inner.shutdown {
                        // The breaking thread reactivated us (clock-table
                        // wise) before setting the flag; cascade out.
                        let e = if inner.shutdown {
                            DmtError::Shutdown
                        } else {
                            DmtError::BarrierBroken { barrier: b }
                        };
                        drop(inner);
                        self.raise(e);
                    }
                    let bst = &inner.barriers[b.index()];
                    if bst.gen == gen && bst.phase != BarPhase::Collecting {
                        break;
                    }
                    sh.cv.wait(&mut inner);
                }
                let bst = &inner.barriers[b.index()];
                let start = if parallel {
                    bst.merge_start_v
                } else {
                    bst.install_v
                };
                self.v = self.v.max(start);
                self.bd.barrier_wait += self.v - from;
            }
        }

        // Phase 2 (parallel): merge assigned pages, then the last arriver
        // installs and opens the barrier.
        if let (Some(pc), Some(idx)) = (&pc, my_idx) {
            // Slow merger: phase 2 runs outside the token, so a stalled
            // participant exercises the install-side wait for stragglers.
            self.perturb_hit(PerturbSite::Barrier);
            let w = pc.merge_for(idx);
            let c = w.pages as u64 * self.cost.page_commit + w.merged as u64 * self.cost.page_merge;
            self.v += c;
            self.bd.commit += c;
            self.cnt.pages_merged += w.merged as u64;
            let mut inner = sh.inner.lock();
            {
                let bst = &mut inner.barriers[b.index()];
                bst.phase2_done += 1;
                bst.phase2_max_v = bst.phase2_max_v.max(self.v);
            }
            sh.cv.notify_all();
            if is_last {
                loop {
                    if inner.barriers[b.index()].broken || inner.shutdown {
                        let e = if inner.shutdown {
                            DmtError::Shutdown
                        } else {
                            DmtError::BarrierBroken { barrier: b }
                        };
                        drop(inner);
                        self.raise(e);
                    }
                    if inner.barriers[b.index()].phase2_done == parties {
                        break;
                    }
                    sh.cv.wait(&mut inner);
                }
                drop(inner);
                let installed = pc.install(&sh.seg);
                let mut inner = sh.inner.lock();
                // Page accounting uses the installed (merged) counts so the
                // TSO and LRC page metrics share units.
                for (t, pages) in &installed {
                    self.cnt.pages_committed += *pages as u64;
                    if let Some(l) = inner.lrc.as_mut() {
                        l.on_commit(*t, *pages);
                    }
                }
                let ic = self.cost.commit_base;
                let p2max = inner.barriers[b.index()].phase2_max_v;
                self.v = self.v.max(p2max) + ic;
                self.bd.commit += ic;
                let bst = &mut inner.barriers[b.index()];
                bst.install_v = self.v;
                bst.install_version = sh.seg.latest_id();
                self.sh.cfg.trace.emit(Event::BarrierOpen {
                    tid: self.tid,
                    barrier: b,
                    gen,
                    install_version: bst.install_version,
                });
                for _ in 0..bst.parties {
                    sh.seg.pin(bst.install_version);
                }
                bst.phase = BarPhase::Installed;
                let others: Vec<Tid> = bst
                    .arrived
                    .iter()
                    .copied()
                    .filter(|t| *t != self.tid)
                    .collect();
                let ff = bst.max_arrival_clock;
                for t in others {
                    inner.table.reactivate(t, ff, self.v);
                }
                inner.table.resume(self.tid, self.clock, self.v);
                self.release_token_locked(&mut inner);
            } else {
                let from = self.v;
                loop {
                    if inner.barriers[b.index()].broken || inner.shutdown {
                        let e = if inner.shutdown {
                            DmtError::Shutdown
                        } else {
                            DmtError::BarrierBroken { barrier: b }
                        };
                        drop(inner);
                        self.raise(e);
                    }
                    let bst = &inner.barriers[b.index()];
                    if bst.gen == gen && bst.phase == BarPhase::Installed {
                        break;
                    }
                    sh.cv.wait(&mut inner);
                }
                self.v = self.v.max(inner.barriers[b.index()].install_v);
                self.bd.barrier_wait += self.v - from;
            }
        }

        // Everyone: pull the installed state (exactly — later commits by
        // non-participants must not change our update work) and leave.
        let upto = {
            let inner = sh.inner.lock();
            inner.barriers[b.index()].install_version
        };
        let ur = sh.seg.update_to(self.ws(), upto);
        sh.seg.unpin(upto);
        let u = self.cost.update_base + ur.pages_propagated * self.cost.page_update;
        self.v += u;
        self.bd.update += u;
        self.cnt.pages_propagated += ur.pages_propagated;

        {
            let mut inner = sh.inner.lock();
            let bst = &mut inner.barriers[b.index()];
            // Deterministic fast-forward: all parties leave at the latest
            // arrival clock, so the next chunk starts even.
            self.clock = self.clock.max(bst.max_arrival_clock);
            bst.leaving += 1;
            if bst.leaving == parties {
                bst.reset();
            }
            if let Some(l) = inner.lrc.as_mut() {
                l.on_acquire(self.tid, LrcObject::Barrier(b.0));
            }
            sh.cv.notify_all();
        }
        self.cnt.chunks += 1;
        self.chunk_start_clock = self.clock;
        self.last_sync_end_clock = self.clock;
        self.ovf.chunk_start();
    }

    /// Deterministic shared-reader acquisition: granted under the token
    /// when no writer holds the lock and the FIFO queue is empty;
    /// otherwise queue. Queued threads are *granted by the waker* (direct
    /// hand-off) — a retry model could re-queue behind newly arrived
    /// writers and strand the whole queue.
    fn rw_read_lock(&mut self, l: RwLockId) {
        self.sync_prologue();
        let _ = self.acquire_token_or_raise();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        if let Some(by) = inner.rwlocks[l.index()].poisoned {
            drop(inner);
            self.finish_rw_op();
            self.raise(DmtError::RwLockPoisoned { lock: l, by });
        }
        let st = &mut inner.rwlocks[l.index()];
        if st.writer.is_none() && st.waiters.is_empty() {
            st.readers += 1;
            self.sh.cfg.trace.emit(Event::RwAcquire {
                tid: self.tid,
                lock: l,
                writer: false,
            });
            if let Some(t) = inner.lrc.as_mut() {
                t.on_acquire(self.tid, LrcObject::RwLock(l.0));
            }
            drop(inner);
            self.finish_rw_op();
            return;
        }
        st.waiters.push_back((self.tid, false));
        inner.threads[self.tid.index()].saved_clock = self.clock;
        self.sh.cfg.trace.emit(Event::Depart {
            tid: self.tid,
            clock: self.clock,
        });
        inner.table.depart(self.tid, self.v);
        drop(inner);
        // Commit before departing (see `mutex_lock`).
        self.commit_and_update();
        let mut inner = sh.inner.lock();
        self.release_token_locked(&mut inner);
        if let Err(e) = self.block_until_woken(&mut inner) {
            drop(inner);
            self.raise(e);
        }
        if let Some(t) = inner.lrc.as_mut() {
            t.on_acquire(self.tid, LrcObject::RwLock(l.0));
        }
        drop(inner);
        // The waker granted us the read hold; refresh our view under the
        // token (acquire semantics).
        self.rw_post_grant();
    }

    /// Releases a shared-reader hold; the last reader hands off to the
    /// queue head.
    fn rw_read_unlock(&mut self, l: RwLockId) {
        self.sync_prologue();
        self.acquire_token_or_raise();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        let st = &mut inner.rwlocks[l.index()];
        assert!(
            st.readers > 0,
            "{} read-unlocking {l} with no readers",
            self.tid
        );
        st.readers -= 1;
        self.sh.cfg.trace.emit(Event::RwRelease {
            tid: self.tid,
            lock: l,
            writer: false,
        });
        if st.readers == 0 {
            self.rw_wake_head(&mut inner, l);
        }
        if let Some(t) = inner.lrc.as_mut() {
            t.on_release(self.tid, LrcObject::RwLock(l.0));
        }
        inner.table.resume(self.tid, self.clock, self.v);
        drop(inner);
        self.commit_and_update();
        let mut inner = sh.inner.lock();
        self.release_token_locked(&mut inner);
        drop(inner);
        self.last_sync_end_clock = self.clock;
    }

    /// Deterministic exclusive acquisition (direct hand-off when queued).
    fn rw_write_lock(&mut self, l: RwLockId) {
        self.sync_prologue();
        let _ = self.acquire_token_or_raise();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        if let Some(by) = inner.rwlocks[l.index()].poisoned {
            drop(inner);
            self.finish_rw_op();
            self.raise(DmtError::RwLockPoisoned { lock: l, by });
        }
        let st = &mut inner.rwlocks[l.index()];
        if st.writer.is_none() && st.readers == 0 && st.waiters.is_empty() {
            st.writer = Some(self.tid);
            self.sh.cfg.trace.emit(Event::RwAcquire {
                tid: self.tid,
                lock: l,
                writer: true,
            });
            if let Some(t) = inner.lrc.as_mut() {
                t.on_acquire(self.tid, LrcObject::RwLock(l.0));
            }
            drop(inner);
            self.finish_rw_op();
            return;
        }
        st.waiters.push_back((self.tid, true));
        inner.threads[self.tid.index()].saved_clock = self.clock;
        self.sh.cfg.trace.emit(Event::Depart {
            tid: self.tid,
            clock: self.clock,
        });
        inner.table.depart(self.tid, self.v);
        drop(inner);
        self.commit_and_update();
        let mut inner = sh.inner.lock();
        self.release_token_locked(&mut inner);
        if let Err(e) = self.block_until_woken(&mut inner) {
            drop(inner);
            self.raise(e);
        }
        if let Some(t) = inner.lrc.as_mut() {
            t.on_acquire(self.tid, LrcObject::RwLock(l.0));
        }
        drop(inner);
        self.rw_post_grant();
    }

    /// Releases the exclusive hold; hands off to the queued writer or
    /// every leading reader.
    fn rw_write_unlock(&mut self, l: RwLockId) {
        self.sync_prologue();
        self.acquire_token_or_raise();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        assert_eq!(
            inner.rwlocks[l.index()].writer,
            Some(self.tid),
            "{} write-unlocking {l} it does not hold",
            self.tid
        );
        inner.rwlocks[l.index()].writer = None;
        self.sh.cfg.trace.emit(Event::RwRelease {
            tid: self.tid,
            lock: l,
            writer: true,
        });
        self.rw_wake_head(&mut inner, l);
        if let Some(t) = inner.lrc.as_mut() {
            t.on_release(self.tid, LrcObject::RwLock(l.0));
        }
        inner.table.resume(self.tid, self.clock, self.v);
        drop(inner);
        self.commit_and_update();
        let mut inner = sh.inner.lock();
        self.release_token_locked(&mut inner);
        drop(inner);
        self.last_sync_end_clock = self.clock;
    }

    /// §2.7: a deterministic atomic — token-protected RMW on the latest
    /// committed state, committed before the token can move on.
    fn atomic_fetch_add_u64(&mut self, addr: Addr, v: u64) -> u64 {
        self.atomic_rmw(addr, |old| old.wrapping_add(v))
    }

    /// §2.7: deterministic compare-and-swap (see `atomic_fetch_add_u64`).
    fn atomic_cas_u64(&mut self, addr: Addr, expect: u64, new: u64) -> u64 {
        self.atomic_rmw(addr, |old| if old == expect { new } else { old })
    }

    /// Deterministic thread creation with pool reuse (§3.3).
    fn spawn(&mut self, job: Job) -> Tid {
        self.sync_prologue();
        self.acquire_token_or_raise();
        // Creation is a release edge: the child must see our writes.
        self.commit_and_update();
        let sh = Arc::clone(&self.sh);
        let mut inner = sh.inner.lock();
        assert!(
            (inner.next_tid as usize) < sh.cfg.max_threads,
            "thread limit {} exceeded",
            sh.cfg.max_threads
        );
        let child = Tid(inner.next_tid);
        inner.next_tid += 1;
        inner.threads.push(ThreadSt::default());
        inner.live += 1;
        inner.table.register(child, self.clock, self.v);
        self.cnt.spawns += 1;
        if let Some(l) = inner.lrc.as_mut() {
            l.on_spawn(self.tid, child);
        }

        let reuse = sh.opts.thread_pool && !inner.pool.is_empty();
        self.sh.cfg.trace.emit(Event::Spawn {
            parent: self.tid,
            child,
            pooled: reuse,
        });
        let spawn_cost;
        if reuse {
            // INVARIANT: `reuse` checked the pool non-empty two lines up,
            // under the same lock hold.
            #[allow(clippy::expect_used)]
            let entry = inner.pool.pop().expect("checked non-empty");
            let mut ws = entry.ws;
            sh.seg.adopt(&mut ws, child);
            // The reused workspace only needs the delta since it was pooled
            // (much cheaper than a fork, as §3.3 observes).
            let ur = sh.seg.update(&mut ws);
            spawn_cost = self.cost.pool_reuse + ur.pages_propagated * self.cost.page_update;
            self.cnt.pool_hits += 1;
            self.v += spawn_cost;
            self.bd.lib += spawn_cost;
            // The worker holds its own Sender clone and re-pools itself
            // with it when this job exits.
            // INVARIANT: a pooled worker is parked in `rx.recv()` — its
            // receiver cannot be dropped while its entry is in the pool
            // (even a panicked job re-pools through `abort`).
            #[allow(clippy::expect_used)]
            entry
                .tx
                .send(Msg::Start {
                    tid: child,
                    job,
                    clock: self.clock,
                    v: self.v,
                    ws,
                })
                .expect("pooled worker hung up");
        } else {
            // Fork: copy every mapped page-table entry into the child.
            let (ws, mapped) = sh.seg.new_workspace(child);
            spawn_cost = self.cost.spawn_base + mapped as u64 * self.cost.page_map;
            self.v += spawn_cost;
            self.bd.lib += spawn_cost;
            let tx = crate::runtime::spawn_worker(&sh, &mut inner);
            // INVARIANT: the worker thread was spawned one line up and
            // blocks on `rx.recv()` before anything can unwind it.
            #[allow(clippy::expect_used)]
            tx.send(Msg::Start {
                tid: child,
                job,
                clock: self.clock,
                v: self.v,
                ws,
            })
            .expect("fresh worker hung up");
        }
        inner.table.resume(self.tid, self.clock, self.v);
        // Keep the rotation turn: back-to-back creates form one phase.
        self.release_token_locked_ex(&mut inner, false);
        drop(inner);
        self.last_sync_end_clock = self.clock;
        child
    }

    fn join(&mut self, t: Tid) {
        if let Err(e) = self.join_inner(t) {
            self.raise(e);
        }
    }

    fn try_join(&mut self, t: Tid) -> DmtResult<()> {
        self.join_inner(t)
    }
}
