//! **Consequence**: high-performance deterministic multithreading with
//! total-store-order consistency.
//!
//! This crate is the core of the reproduction of Merrifield, Devietti &
//! Eriksson, *"High-Performance Determinism with Total Store Order
//! Consistency"* (EuroSys 2015). It provides [`ConsequenceRuntime`], a
//! deterministic implementation of the [`dmt_api::Runtime`] contract:
//! programs written against [`dmt_api::ThreadCtx`] execute with
//! reproducible synchronization outcomes, reproducible data-race
//! resolutions, and reproducible final memory — while retaining the TSO
//! memory model of x86.
//!
//! # Architecture
//!
//! * ordering — a Kendo-style instruction-count logical clock with a
//!   single global token ([`det_clock`]), or round-robin for the
//!   Consequence-RR / DWC configurations;
//! * isolation — version-controlled memory with byte-granularity
//!   last-writer-wins merging ([`conversion`]);
//! * synchronization — blocking deterministic mutexes with wait queues and
//!   `clockDepart`, condition variables, and a barrier with two-phase
//!   parallel commit (§4);
//! * adaptation — adaptive chunk coarsening, adaptive counter overflow,
//!   clock fast-forward, user-space counter reads, and thread-pool reuse
//!   (§3), each independently toggleable through [`Options`] for the
//!   Figure 13 ablations;
//! * measurement — deterministic virtual-time accounting (see the
//!   workspace `DESIGN.md`) and the §5.3 LRC propagation estimator
//!   ([`lrc`]).

// Robustness gate: runtime code must not panic on recoverable
// conditions — recoverable failures travel as `DmtError` and workload
// panics are contained at the thread boundary. The few sanctioned
// `expect` sites carry `#[allow]` with an invariant comment proving they
// are unreachable absent caller API misuse. (Tests are exempt.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod coarsen;
mod ctx;
pub mod lrc;
pub mod options;
pub mod replay;
pub mod runtime;
mod shared;

pub use options::Options;
pub use replay::{run_replayed, ReplayError, ReplayMonitor, ReplayOutcome};
pub use runtime::ConsequenceRuntime;
