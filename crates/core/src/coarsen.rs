//! Adaptive coarsening (§3.1).
//!
//! Coarsening merges consecutive global-coordination phases: a thread keeps
//! the global token across synchronization operations and defers its commit,
//! eliminating the per-operation coordination cost at the price of blocking
//! every other thread's synchronization for the duration.
//!
//! Two predictors drive the decision, both exponentially weighted moving
//! averages of past chunk lengths:
//!
//! * a **per-lock** estimate of the critical-section length, consulted when
//!   deciding to coarsen *across* a lock operation;
//! * a **per-thread** estimate of the chunk following an unlock, consulted
//!   when deciding to coarsen across an unlock.
//!
//! The maximum coarsened-chunk length adapts by **multiplicative increase /
//! multiplicative decrease**: when a thread enters global coordination and
//! the *previous* entrant was itself, it doubles its budget (it has the
//! system to itself); when someone else got there in between, it halves it
//! (others are being blocked). All inputs — chunk lengths and token order —
//! are deterministic, so the decisions are too.

/// EWMA with α = 1/2: `est ← (est + sample) / 2`.
///
/// The halving average needs no floating point, keeping every coarsening
/// decision exactly reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ewma(u64);

impl Ewma {
    /// Current estimate.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Folds in a new sample. `(est & s) + ((est ^ s) >> 1)` is the
    /// overflow-safe form of `(est + s) / 2` (shared bits plus half the
    /// differing bits), exact for all inputs including those whose sum
    /// exceeds `u64::MAX`.
    pub fn update(&mut self, sample: u64) {
        self.0 = (self.0 & sample) + ((self.0 ^ sample) >> 1);
    }
}

/// Per-thread coarsening state.
#[derive(Clone, Debug)]
pub struct CoarsenState {
    /// Adaptive maximum coarsened-chunk length (instructions).
    max_chunk: u64,
    min: u64,
    cap: u64,
    /// Fixed budget override (Figure 14 static sweep).
    fixed: Option<u64>,
    /// EWMA of the chunk length following an unlock.
    pub thread_est: Ewma,
}

impl CoarsenState {
    /// Creates the adaptive state with the configured bounds, or a fixed
    /// budget if `fixed` is set.
    pub fn new(initial: u64, min: u64, cap: u64, fixed: Option<u64>) -> CoarsenState {
        CoarsenState {
            max_chunk: initial.clamp(min, cap),
            min,
            cap,
            fixed,
            thread_est: Ewma::default(),
        }
    }

    /// Current budget in instructions.
    pub fn budget(&self) -> u64 {
        self.fixed.unwrap_or(self.max_chunk)
    }

    /// Multiplicative increase/decrease on entering global coordination:
    /// `same_thread` is whether this thread was also the previous entrant.
    pub fn adapt(&mut self, same_thread: bool) {
        if self.fixed.is_some() {
            return;
        }
        if same_thread {
            // Saturating: with `cap` near `u64::MAX` the doubling must not
            // wrap around to a tiny budget.
            self.max_chunk = self.max_chunk.saturating_mul(2).min(self.cap);
        } else {
            // Widen through u128 so `max_chunk * 3` cannot overflow while
            // keeping the exact `⌊3m/4⌋` the figures were calibrated with.
            self.max_chunk = ((self.max_chunk as u128 * 3 / 4) as u64).max(self.min);
        }
    }

    /// Whether to keep the token across the next chunk: the instructions
    /// consumed since the token was acquired plus the predicted next chunk
    /// must fit in the budget.
    pub fn should_retain(&self, consumed: u64, predicted_next: u64) -> bool {
        consumed.saturating_add(predicted_next) <= self.budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_halfway() {
        let mut e = Ewma::default();
        e.update(100);
        assert_eq!(e.get(), 50);
        e.update(100);
        assert_eq!(e.get(), 75);
        for _ in 0..20 {
            e.update(100);
        }
        assert!(e.get() >= 98);
    }

    #[test]
    fn adapt_doubles_and_halves_within_bounds() {
        let mut c = CoarsenState::new(1_000, 100, 4_000, None);
        c.adapt(true);
        assert_eq!(c.budget(), 2_000);
        c.adapt(true);
        c.adapt(true);
        assert_eq!(c.budget(), 4_000, "capped");
        c.adapt(false);
        assert_eq!(c.budget(), 3_000, "multiplicative decrease is gentler");
        for _ in 0..20 {
            c.adapt(false);
        }
        assert_eq!(c.budget(), 100, "floored");
    }

    #[test]
    fn fixed_budget_never_adapts() {
        let mut c = CoarsenState::new(1_000, 100, 4_000, Some(777));
        c.adapt(true);
        c.adapt(false);
        assert_eq!(c.budget(), 777);
    }

    #[test]
    fn retain_respects_budget() {
        let c = CoarsenState::new(1_000, 100, 4_000, None);
        assert!(c.should_retain(400, 500));
        assert!(c.should_retain(500, 500));
        assert!(!c.should_retain(600, 500));
        assert!(!c.should_retain(u64::MAX, 1), "no overflow");
    }

    #[test]
    fn initial_budget_is_clamped() {
        let c = CoarsenState::new(10, 100, 4_000, None);
        assert_eq!(c.budget(), 100);
        let c = CoarsenState::new(1 << 40, 100, 4_000, None);
        assert_eq!(c.budget(), 4_000);
    }
}
