//! Replay engine: re-executes a workload driven by a recorded trace.
//!
//! A `.dmtrace` container (see `dmt_trace` and `docs/TRACE_FORMAT.md`)
//! holds the deterministic schedule of one run. Replay rebuilds the
//! runtime the trace describes, feeds the recorded token-grant order to
//! the scheduler as a [`det_clock::ReplayCtl`] grant script, and attaches
//! a [`dmt_trace::ReplaySink`] that compares every live schedule event —
//! and every per-page cumulative-hash checkpoint — against the recording.
//!
//! On the first mismatch the sink produces the first-divergent-event
//! diagnosis (`dmt_api::trace::Divergence`, the same report the stress
//! harness emits) and releases the grant script, so the run completes
//! under recomputed eligibility and *reports* where it split instead of
//! deadlocking on a schedule that no longer fits.
//!
//! Two option overrides are applied during replay, both schedule-neutral
//! and therefore excluded from [`Options::fingerprint`]: the scheduler is
//! forced to [`SchedKind::Reference`] (its broadcast wake-ups cannot
//! strand the scripted next grantee, whom the fast path's targeted wakes
//! do not know about), and the watchdog stall threshold is lowered so a
//! grant-order deadlock — possible only against a trace from different
//! code — is diagnosed quickly.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use det_clock::{ReplayCtl, SchedKind};
use dmt_api::{
    CommonConfig, CostModel, FixedPanic, Job, PanicSite, PerturbHandle, PerturbPlan, PlanPerturber,
    RunReport, Runtime, Tid, TraceHandle, TraceSink,
};
use dmt_trace::{PartialTrace, ReplaySink, Trace, TraceError, TraceMeta};

use crate::options::Options;
use crate::runtime::ConsequenceRuntime;

/// Watchdog stall threshold during replay, in milliseconds. Low: a
/// replay that stalls is almost certainly waiting on a grant the current
/// build will never produce, and the point is to diagnose that fast.
pub const REPLAY_STALL_MS: u64 = 2_000;

/// Why a trace could not be replayed at all (as opposed to replaying and
/// diverging, which is a [`ReplayOutcome`]).
#[derive(Debug)]
pub enum ReplayError {
    /// The container failed to open or validate.
    Trace(TraceError),
    /// The trace was recorded under a runtime this engine cannot drive
    /// (e.g. `pthreads`, which makes no determinism promise).
    UnsupportedRuntime(String),
    /// The current build's schedule-relevant options differ from the
    /// recorded fingerprint: the schedule is not expected to apply.
    OptionsMismatch {
        /// Fingerprint stored in the trace.
        recorded: u64,
        /// Fingerprint of this build's options for the same runtime.
        current: u64,
    },
    /// The trace was recorded under a perturbation plan that cannot be
    /// reconstructed from its seed (a shrunk plan); replay would not be
    /// comparing like with like.
    UnsupportedPerturbation {
        /// Master seed stored in the trace.
        seed: u64,
        /// Plan digest stored in the trace.
        plan: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "trace error: {e}"),
            ReplayError::UnsupportedRuntime(r) => {
                write!(f, "cannot replay runtime {r:?} (not a Consequence preset)")
            }
            ReplayError::OptionsMismatch { recorded, current } => write!(
                f,
                "options fingerprint mismatch: trace {recorded:#018x}, build {current:#018x} \
                 (schedule-relevant options changed since recording)"
            ),
            ReplayError::UnsupportedPerturbation { seed, plan } => write!(
                f,
                "trace recorded under an irreproducible perturbation plan \
                 (seed {seed:#x}, digest {plan:#x}): only unperturbed and \
                 full-strength plans replay"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> ReplayError {
        ReplayError::Trace(e)
    }
}

/// The verdict of a finished replay.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Schedule events in the recording.
    pub recorded_events: u64,
    /// Schedule events the re-execution produced.
    pub replayed_events: u64,
    /// Schedule hash stored in the trace META stream.
    pub recorded_hash: u64,
    /// Schedule hash the re-execution produced.
    pub replayed_hash: u64,
    /// Cumulative-hash checkpoints that matched.
    pub checkpoints_passed: u64,
    /// Checkpoints the recording carries.
    pub checkpoints_total: u64,
    /// Rendered first-divergent-event diagnosis, `None` when the replay
    /// tracked the recording exactly (including its length).
    pub divergence: Option<String>,
    /// Whether the recording was a salvaged prefix
    /// ([`ConsequenceRuntime::new_replaying_partial`]): the live run
    /// outliving it is clean exhaustion, not divergence.
    pub partial: bool,
    /// Partial replays: live event index at which the recorded prefix
    /// ran out, `None` when the live run ended at or before the
    /// recording's length.
    pub exhausted_at: Option<u64>,
    /// Live schedule hash at the moment the replay had consumed exactly
    /// the recorded events — the bit-identical-prefix check. `None` when
    /// the live run ended inside the prefix.
    pub prefix_hash: Option<u64>,
}

impl ReplayOutcome {
    /// Whether the re-execution reproduced the recorded schedule exactly:
    /// same events, same length, same hash, every checkpoint passed. For
    /// partial recordings use
    /// [`prefix_matches`](ReplayOutcome::prefix_matches).
    pub fn matches(&self) -> bool {
        self.divergence.is_none()
            && self.replayed_events == self.recorded_events
            && self.replayed_hash == self.recorded_hash
            && self.checkpoints_passed == self.checkpoints_total
    }

    /// Whether the re-execution reproduced the recorded *prefix* exactly:
    /// no divergence inside it, every checkpoint passed, the live hash at
    /// the crossing point equal to the recorded prefix hash, and the live
    /// run at least as long as the recording. This is the partial-trace
    /// verdict: a salvaged crashed run replays to (at least) its fault
    /// point bit-identically.
    pub fn prefix_matches(&self) -> bool {
        self.divergence.is_none()
            && self.replayed_events >= self.recorded_events
            && self.prefix_hash == Some(self.recorded_hash)
            && self.checkpoints_passed == self.checkpoints_total
    }

    /// The verdict appropriate to the recording's kind: `matches` for
    /// full traces, `prefix_matches` for salvaged partials.
    pub fn reproduced(&self) -> bool {
        if self.partial {
            self.prefix_matches()
        } else {
            self.matches()
        }
    }
}

/// Observer side of a replaying runtime: holds the comparison sink and
/// grant script, and renders the verdict after the run.
pub struct ReplayMonitor {
    sink: Arc<ReplaySink>,
    ctl: Arc<ReplayCtl>,
    recorded_events: u64,
    recorded_hash: u64,
    partial: bool,
}

impl ReplayMonitor {
    /// Final verdict. Runs the end-of-trace check (a replay that stopped
    /// short diverged at its end — in partial mode too: the salvaged
    /// prefix itself must replay fully), stamps the rendered diagnosis
    /// into `report.replay_divergence`, and returns the outcome.
    pub fn finish(self, report: &mut RunReport) -> ReplayOutcome {
        let divergence = self.sink.finish_check().map(|d| d.to_string());
        report.replay_divergence = divergence.clone();
        ReplayOutcome {
            recorded_events: self.recorded_events,
            replayed_events: self.sink.replayed_events(),
            recorded_hash: self.recorded_hash,
            replayed_hash: self.sink.schedule_hash(),
            checkpoints_passed: self.sink.checkpoints_passed(),
            checkpoints_total: self.sink.checkpoints_total(),
            divergence,
            partial: self.partial,
            exhausted_at: self.sink.exhausted_at(),
            prefix_hash: self.sink.prefix_hash(),
        }
    }

    /// Grants consumed from the script so far (diagnostic).
    pub fn grants_consumed(&self) -> usize {
        self.ctl.position()
    }
}

/// The Consequence preset matching a recorded runtime label, as written
/// by the recording side ([`dmt_api::Runtime::name`]).
pub fn options_for_label(label: &str) -> Option<Options> {
    match label {
        "consequence-ic" => Some(Options::consequence_ic()),
        "consequence-rr" => Some(Options::consequence_rr()),
        "dwc" => Some(Options::dwc()),
        _ => None,
    }
}

impl ConsequenceRuntime {
    /// Builds a runtime that will re-execute under the schedule recorded
    /// in `trace`, plus the [`ReplayMonitor`] that judges the result.
    ///
    /// The caller must prepare the same workload the trace names (see
    /// [`TraceMeta::workload`] and the input parameters in the META
    /// stream) before calling [`Runtime::run`]; this constructor only
    /// validates that the *runtime configuration* matches the recording
    /// — label, options fingerprint, perturbation plan.
    pub fn new_replaying(
        trace: &Trace,
    ) -> Result<(ConsequenceRuntime, ReplayMonitor), ReplayError> {
        ConsequenceRuntime::new_replaying_inner(trace, false)
    }

    /// Like [`new_replaying`](ConsequenceRuntime::new_replaying), but for
    /// a salvaged [`PartialTrace`]: the comparison sink runs in partial
    /// mode (the live run outliving the recovered prefix is clean
    /// exhaustion, not divergence), and if the recording carried an
    /// injected-panic triple the same deterministic death is re-injected
    /// — so replaying a salvaged crashed run drives it back to the same
    /// fault point. The grant script is exactly the recovered prefix;
    /// once it is exhausted the scheduler falls back to recomputed
    /// eligibility, which is deterministic and therefore completes a
    /// healthy run's tail identically on every replay.
    pub fn new_replaying_partial(
        partial: &PartialTrace,
    ) -> Result<(ConsequenceRuntime, ReplayMonitor), ReplayError> {
        ConsequenceRuntime::new_replaying_inner(&partial.trace, true)
    }

    fn new_replaying_inner(
        trace: &Trace,
        partial: bool,
    ) -> Result<(ConsequenceRuntime, ReplayMonitor), ReplayError> {
        let mut opts = options_for_label(&trace.meta.runtime)
            .ok_or_else(|| ReplayError::UnsupportedRuntime(trace.meta.runtime.clone()))?;
        let current = opts.fingerprint();
        if current != trace.meta.options_fingerprint {
            return Err(ReplayError::OptionsMismatch {
                recorded: trace.meta.options_fingerprint,
                current,
            });
        }
        // Schedule-neutral replay overrides (excluded from the
        // fingerprint): broadcast wake-ups so the scripted grantee is
        // always woken, and a fast deadlock diagnosis.
        opts.sched = SchedKind::Reference;
        opts.watchdog_stall_ms = Some(REPLAY_STALL_MS);

        let perturb = reconstruct_perturb(&trace.meta)?;
        let ctl = Arc::new(ReplayCtl::new(trace.grants().iter().map(|t| t.0).collect()));
        let sink = Arc::new(if partial {
            ReplaySink::new_partial(trace, Arc::clone(&ctl))
        } else {
            ReplaySink::new(trace, Arc::clone(&ctl))
        });
        let cfg = CommonConfig {
            heap_pages: trace.meta.heap_pages as usize,
            max_threads: trace.meta.max_threads as usize,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget: 4,
            trace: TraceHandle::to(Arc::clone(&sink) as _),
            perturb,
            witness: dmt_api::WitnessHandle::off(),
        };
        let monitor = ReplayMonitor {
            sink,
            ctl: Arc::clone(&ctl),
            recorded_events: trace.meta.event_count,
            recorded_hash: trace.meta.schedule_hash,
            partial,
        };
        Ok((
            ConsequenceRuntime::new_with_replay(cfg, opts, Some(ctl)),
            monitor,
        ))
    }
}

/// Rebuilds the perturbation handle a trace was recorded under: off, or
/// a full-strength seeded plan — anything else (a shrunk plan) cannot be
/// reconstructed from the seed and is refused — then, when the metadata
/// carries an injected-panic triple, wraps it in a [`FixedPanic`] so the
/// replay re-injects the same deterministic death the recording died of.
fn reconstruct_perturb(meta: &TraceMeta) -> Result<PerturbHandle, ReplayError> {
    let timing = if meta.perturb_seed == 0 && meta.perturb_plan == 0 {
        PerturbHandle::off()
    } else {
        let plan = PerturbPlan::full(meta.perturb_seed);
        if plan.digest() != meta.perturb_plan {
            return Err(ReplayError::UnsupportedPerturbation {
                seed: meta.perturb_seed,
                plan: meta.perturb_plan,
            });
        }
        PerturbHandle::to(Arc::new(PlanPerturber::new(plan)))
    };
    if meta.panic_site == 0 {
        return Ok(timing);
    }
    let site =
        PanicSite::from_code(meta.panic_site).ok_or(ReplayError::Trace(TraceError::Corrupt {
            what: "panic site code",
        }))?;
    let victim = u32::try_from(meta.panic_victim).map(Tid).map_err(|_| {
        ReplayError::Trace(TraceError::Corrupt {
            what: "panic victim",
        })
    })?;
    Ok(PerturbHandle::to(Arc::new(FixedPanic {
        site,
        victim,
        nth: meta.panic_nth,
        inner: timing,
    })))
}

/// One-call replay: opens `path`, rebuilds the recorded runtime, lets
/// `prepare` stage the workload (create sync objects, initialize the
/// heap, return the job), runs it under the recorded grant script, and
/// returns the report plus the replay verdict.
///
/// # Examples
///
/// ```no_run
/// use consequence::replay::run_replayed;
///
/// let (report, outcome) = run_replayed("run.dmtrace", |rt| {
///     // Re-stage the same workload the trace names.
///     Box::new(|_ctx| {})
/// })?;
/// assert!(outcome.matches(), "{:?}", outcome.divergence);
/// # Ok::<(), consequence::replay::ReplayError>(())
/// ```
pub fn run_replayed<P, F>(path: P, prepare: F) -> Result<(RunReport, ReplayOutcome), ReplayError>
where
    P: AsRef<Path>,
    F: FnOnce(&mut ConsequenceRuntime) -> Job,
{
    let trace = Trace::open(path)?;
    let (mut rt, monitor) = ConsequenceRuntime::new_replaying(&trace)?;
    let job = prepare(&mut rt);
    let mut report = rt.run(job);
    let outcome = monitor.finish(&mut report);
    Ok((report, outcome))
}
