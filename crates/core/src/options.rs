//! Runtime options: the paper's optimizations as independent toggles.
//!
//! Figure 13 evaluates Consequence with each optimization disabled in turn;
//! these options are that ablation surface. The presets at the bottom
//! configure the runtime as Consequence-IC, Consequence-RR and DWC.

use det_clock::{OrderPolicy, SchedKind};

/// Consequence configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Deterministic ordering policy: instruction count (Consequence-IC)
    /// or round robin (Consequence-RR / DWC).
    pub order: OrderPolicy,
    /// Adaptive coarsening of chunks (§3.1).
    pub coarsening: bool,
    /// Fixed coarsening budget in instructions, for the Figure 14 static
    /// sweep. `None` means the adaptive multiplicative-increase /
    /// multiplicative-decrease policy.
    pub static_coarsen: Option<u64>,
    /// Fast-forward lagging logical clocks on token acquisition (§3.5).
    pub fast_forward: bool,
    /// Two-phase parallel barrier commit (§4.2); otherwise barrier commits
    /// are serial, as in DWC.
    pub parallel_barrier: bool,
    /// Adaptive counter-overflow notification (§3.2); otherwise a fixed
    /// overflow interval.
    pub adaptive_overflow: bool,
    /// Read performance counters from user space during coarsened chunks
    /// (§3.4); otherwise every read costs a syscall.
    pub user_counter_read: bool,
    /// Reuse exited threads for new spawns (§3.3).
    pub thread_pool: bool,
    /// Commit forcibly after this many instructions in one chunk —
    /// the §2.7 ad-hoc synchronization escape hatch. The paper evaluates
    /// with this disabled (`None`).
    pub chunk_limit: Option<u64>,
    /// Alias every mutex to one global lock, as DThreads and DWC do.
    pub single_global_lock: bool,
    /// Kendo-style polling locks (§4.1): a failed acquire does not block
    /// and depart; instead the thread bumps its logical clock past the
    /// current minimum and retries. The paper contrasts its blocking
    /// queue-based mutex (the default) against this design — polling burns
    /// token acquisitions and needs a program-specific clock increment.
    pub polling_locks: bool,
    /// Clock increment added on each failed polling acquire (Kendo's
    /// tuning knob; only used with `polling_locks`).
    pub polling_increment: u64,
    /// Scheduler implementation: the lock-free fast path
    /// ([`SchedKind::Fast`], the default) or the all-under-one-lock
    /// reference table with `notify_all` wake-ups
    /// ([`SchedKind::Reference`]). Both produce bit-identical schedules
    /// (checked by `stress --sched-diff`); the reference table is kept for
    /// differential testing, mirroring the `merge::bytewise` precedent.
    pub sched: SchedKind,
    /// Record the token-grant schedule — `(thread, logical clock)` per
    /// grant — retrievable after the run via
    /// [`crate::ConsequenceRuntime::take_schedule`]. The schedule is the
    /// runtime's deterministic total order of synchronization; recording
    /// it costs memory proportional to the number of sync operations.
    pub record_schedule: bool,
    /// Base overflow interval in instructions (§3.2 uses 5 000).
    pub base_overflow: u64,
    /// Initial adaptive maximum coarsened-chunk length, in instructions.
    pub coarsen_initial: u64,
    /// Lower bound for the adaptive maximum chunk length.
    pub coarsen_min: u64,
    /// Upper bound for the adaptive maximum chunk length.
    pub coarsen_cap: u64,
    /// **Deliberate determinism bug** for the `dmt-stress` harness
    /// (`stress --inject-bug`): a thread arriving at a free token takes it
    /// without the deterministic eligibility check, so physical arrival
    /// order leaks into the schedule — the bug class where one
    /// `clockDepart` / publication update is missed. Never enable outside
    /// the stress harness; see `docs/STRESS.md`.
    pub inject_eligibility_bug: bool,
    /// Watchdog stall threshold in milliseconds: when live threads exist
    /// but no token is granted for this long, the supervisor checks the
    /// scheduler's invariants — failing over to the reference table on a
    /// fast-path violation, or diagnosing a deadlock and shutting the run
    /// down with [`dmt_api::DmtError::Deadlock`] instead of hanging.
    /// `None` disables supervision. Pure-compute stalls (threads that
    /// never synchronize) are indistinguishable from deadlock to a
    /// logical-progress watchdog; see `docs/ROBUSTNESS.md`.
    pub watchdog_stall_ms: Option<u64>,
    /// **Deliberate scheduler corruption** for the robustness harness: at
    /// the first token grant at or past the given one with a waiter
    /// queued, drop the fast scheduler's head waiter from its queue (the exact bug class `FastTable::check_invariants`
    /// catches). The run stalls, the watchdog detects the violation and
    /// fails over to the reference table, and the run completes with
    /// `RunReport::degraded` set. Never enable outside tests.
    pub inject_sched_corruption: Option<u64>,
    /// Number of independently tokened shard domains the `dmt-shard`
    /// subsystem partitions the run into. `1` (the default) is the
    /// unsharded runtime: one token, one clock table, [`DomainId::ROOT`]
    /// only. Schedule-relevant: each domain serializes only its own sync
    /// ops, so the same program under a different shard count produces a
    /// different (still deterministic) schedule.
    ///
    /// [`DomainId::ROOT`]: dmt_api::DomainId::ROOT
    pub shard_domains: u32,
    /// Seed for the deterministic shard map assigning keys to domains.
    /// Schedule-relevant whenever `shard_domains > 1`: moving a key to a
    /// different domain moves its sync ops to a different token order.
    pub shard_map_seed: u64,
    /// Pipelined asynchronous commit: split `Segment::commit` into a
    /// cheap under-token *publish* (diff + version refs + ordered log
    /// issue) and a deferred *settle* (byte merge, log folding, GC
    /// execution, twin preparation) on a background pool. All deferred
    /// work is charged to the owning thread's logical clock at publish
    /// time, so schedules and output hashes are bit-identical to the
    /// serial path (checked by `stress --pipe-diff`); deliberately not
    /// fingerprinted for the same reason.
    pub pipeline_commit: bool,
    /// Settle-pool worker threads when `pipeline_commit` is on. `0` is a
    /// valid (test-only) stalled regime: jobs queue until a flush.
    pub pipeline_workers: usize,
    /// Durable-flush cadence for disk trace recording: flush the
    /// container to the OS after every this many sealed event pages, so
    /// a SIGKILLed recording loses at most that much schedule to the
    /// salvage path (`dmt_trace::Trace::salvage`). `0` flushes only at
    /// finish (the pre-durability behavior). Observation-only — flushing
    /// never touches logical time — so deliberately **not** part of the
    /// options fingerprint, like the other schedule-neutral knobs.
    pub trace_flush_pages: u32,
}

impl Options {
    /// Consequence-IC: the paper's headline configuration.
    pub fn consequence_ic() -> Options {
        Options {
            order: OrderPolicy::InstructionCount,
            coarsening: true,
            static_coarsen: None,
            fast_forward: true,
            parallel_barrier: true,
            adaptive_overflow: true,
            user_counter_read: true,
            thread_pool: true,
            chunk_limit: None,
            single_global_lock: false,
            polling_locks: false,
            polling_increment: 1_000,
            sched: SchedKind::Fast,
            record_schedule: false,
            base_overflow: det_clock::overflow::BASE_OVERFLOW,
            coarsen_initial: 32_768,
            coarsen_min: 16_384,
            coarsen_cap: 4 << 20,
            inject_eligibility_bug: false,
            watchdog_stall_ms: Some(5_000),
            inject_sched_corruption: None,
            shard_domains: 1,
            shard_map_seed: 0,
            pipeline_commit: true,
            pipeline_workers: 2,
            trace_flush_pages: 8,
        }
    }

    /// Consequence-RR: identical except for round-robin ordering.
    pub fn consequence_rr() -> Options {
        Options {
            order: OrderPolicy::RoundRobin,
            ..Options::consequence_ic()
        }
    }

    /// DWC (DThreads-with-Conversion): round-robin ordering, asynchronous
    /// commits at sync ops, serial barrier commits, single global lock, no
    /// Consequence optimizations.
    pub fn dwc() -> Options {
        Options {
            order: OrderPolicy::RoundRobin,
            coarsening: false,
            static_coarsen: None,
            fast_forward: false,
            parallel_barrier: false,
            adaptive_overflow: false,
            user_counter_read: false,
            thread_pool: false,
            chunk_limit: None,
            single_global_lock: true,
            polling_locks: false,
            polling_increment: 1_000,
            sched: SchedKind::Fast,
            record_schedule: false,
            base_overflow: det_clock::overflow::BASE_OVERFLOW,
            coarsen_initial: 32_768,
            coarsen_min: 16_384,
            coarsen_cap: 4 << 20,
            inject_eligibility_bug: false,
            watchdog_stall_ms: Some(5_000),
            inject_sched_corruption: None,
            shard_domains: 1,
            shard_map_seed: 0,
            pipeline_commit: true,
            pipeline_workers: 2,
            trace_flush_pages: 8,
        }
    }

    /// FNV-1a fingerprint of every schedule-relevant option.
    ///
    /// A recorded trace is only meaningful for the configuration that
    /// produced it; the fingerprint is stored in the trace META stream
    /// and checked before replay. Deliberately **excluded** because they
    /// cannot change the schedule (and legitimately differ on replay):
    /// `sched` (fast and reference produce bit-identical schedules —
    /// replay forces reference for its broadcast wake-ups),
    /// `record_schedule` (observation only), `watchdog_stall_ms`
    /// (supervision only; replay lowers it),
    /// `pipeline_commit`/`pipeline_workers` (the settle pool's deferred
    /// work is charged at publish time, so pipeline on/off and any worker
    /// count produce bit-identical schedules — a pipelined recording
    /// replays on a serial build and vice versa), and `trace_flush_pages`
    /// (durability of the recording medium; never touches logical time).
    pub fn fingerprint(&self) -> u64 {
        let mut h = dmt_api::Fnv1a::new();
        let mut put = |x: u64| h.update(&x.to_le_bytes());
        put(self.order as u64);
        put(self.coarsening as u64);
        put(self.static_coarsen.unwrap_or(u64::MAX));
        put(self.fast_forward as u64);
        put(self.parallel_barrier as u64);
        put(self.adaptive_overflow as u64);
        put(self.user_counter_read as u64);
        put(self.thread_pool as u64);
        put(self.chunk_limit.unwrap_or(u64::MAX));
        put(self.single_global_lock as u64);
        put(self.polling_locks as u64);
        put(self.polling_increment);
        put(self.base_overflow);
        put(self.coarsen_initial);
        put(self.coarsen_min);
        put(self.coarsen_cap);
        put(self.inject_eligibility_bug as u64);
        put(self.inject_sched_corruption.unwrap_or(u64::MAX));
        // Shard parameters fold only when non-default, so every
        // fingerprint recorded before sharding existed stays valid: an
        // unsharded config hashes exactly as it always did, while a
        // sharded recording is rejected by an unsharded replayer (and
        // vice versa).
        if self.shard_domains != 1 || self.shard_map_seed != 0 {
            put(0x5AD0);
            put(self.shard_domains as u64);
            put(self.shard_map_seed);
        }
        h.digest()
    }

    /// Disables one named optimization, for Figure 13 ablations.
    ///
    /// Recognized names: `"coarsening"`, `"fast_forward"`,
    /// `"parallel_barrier"`, `"adaptive_overflow"`, `"user_counter_read"`,
    /// `"thread_pool"`, `"fast_sched"`, `"pipeline_commit"`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn without(mut self, opt: &str) -> Options {
        match opt {
            "coarsening" => self.coarsening = false,
            "fast_forward" => self.fast_forward = false,
            "parallel_barrier" => self.parallel_barrier = false,
            "adaptive_overflow" => self.adaptive_overflow = false,
            "user_counter_read" => self.user_counter_read = false,
            "thread_pool" => self.thread_pool = false,
            "fast_sched" => self.sched = SchedKind::Reference,
            "pipeline_commit" => self.pipeline_commit = false,
            other => panic!("unknown optimization {other:?}"),
        }
        self
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::consequence_ic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let ic = Options::consequence_ic();
        let rr = Options::consequence_rr();
        let dwc = Options::dwc();
        assert_eq!(ic.order, OrderPolicy::InstructionCount);
        assert_eq!(rr.order, OrderPolicy::RoundRobin);
        assert!(ic.coarsening && !dwc.coarsening);
        assert!(ic.parallel_barrier && !dwc.parallel_barrier);
        assert!(!ic.single_global_lock && dwc.single_global_lock);
    }

    #[test]
    fn without_disables_each_named_optimization() {
        for name in [
            "coarsening",
            "fast_forward",
            "parallel_barrier",
            "adaptive_overflow",
            "user_counter_read",
            "thread_pool",
            "fast_sched",
            "pipeline_commit",
        ] {
            let o = Options::consequence_ic().without(name);
            let disabled = match name {
                "coarsening" => !o.coarsening,
                "fast_forward" => !o.fast_forward,
                "parallel_barrier" => !o.parallel_barrier,
                "adaptive_overflow" => !o.adaptive_overflow,
                "user_counter_read" => !o.user_counter_read,
                "thread_pool" => !o.thread_pool,
                "fast_sched" => o.sched == SchedKind::Reference,
                "pipeline_commit" => !o.pipeline_commit,
                _ => unreachable!(),
            };
            assert!(disabled, "{name} not disabled");
        }
    }

    #[test]
    fn fast_sched_is_the_default_everywhere() {
        assert_eq!(Options::consequence_ic().sched, SchedKind::Fast);
        assert_eq!(Options::consequence_rr().sched, SchedKind::Fast);
        assert_eq!(Options::dwc().sched, SchedKind::Fast);
    }

    #[test]
    #[should_panic(expected = "unknown optimization")]
    fn without_unknown_panics() {
        let _ = Options::consequence_ic().without("warp_drive");
    }

    #[test]
    fn shard_parameters_are_fingerprinted() {
        let base = Options::consequence_ic();
        let mut sharded = Options::consequence_ic();
        sharded.shard_domains = 4;
        assert_ne!(base.fingerprint(), sharded.fingerprint());
        let mut reseeded = sharded.clone();
        reseeded.shard_map_seed = 7;
        assert_ne!(sharded.fingerprint(), reseeded.fingerprint());
        // The default (unsharded) configuration must fingerprint exactly
        // as it did before shard options existed — traces recorded by
        // older builds stay replayable.
        let mut explicit = Options::consequence_ic();
        explicit.shard_domains = 1;
        explicit.shard_map_seed = 0;
        assert_eq!(base.fingerprint(), explicit.fingerprint());
    }

    #[test]
    fn pipeline_options_are_not_fingerprinted() {
        // Pipeline on/off and any worker count must produce bit-identical
        // schedules, so a pipelined recording replays on a serial build.
        let on = Options::consequence_ic();
        let off = Options::consequence_ic().without("pipeline_commit");
        assert!(on.pipeline_commit && !off.pipeline_commit);
        assert_eq!(on.fingerprint(), off.fingerprint());
        let mut wide = Options::consequence_ic();
        wide.pipeline_workers = 7;
        assert_eq!(on.fingerprint(), wide.fingerprint());
    }

    #[test]
    fn trace_flush_cadence_is_not_fingerprinted() {
        // Durable-flush cadence changes only when bytes reach the OS,
        // never the schedule: any cadence must replay any other's trace.
        let base = Options::consequence_ic();
        let mut eager = Options::consequence_ic();
        eager.trace_flush_pages = 1;
        let mut never = Options::consequence_ic();
        never.trace_flush_pages = 0;
        assert_eq!(base.fingerprint(), eager.fingerprint());
        assert_eq!(base.fingerprint(), never.fingerprint());
    }
}
