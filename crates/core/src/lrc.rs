//! Happens-before tracking for the §5.3 LRC memory-propagation study.
//!
//! The paper asks: how much less memory would a lazy-release-consistency
//! (LRC) deterministic system propagate than TSO Consequence? To answer, it
//! augments Consequence with vector clocks on threads, synchronization
//! objects and commits; at every acquire operation it counts the pages that
//! would have to flow along happens-before edges. This module is that
//! estimator (Figure 16). It observes the run without influencing it.
//!
//! A commit by thread `u` carrying `u`'s vector clock `C` must be
//! propagated to thread `t` at the first acquire where `C ≤ V_t`. Because
//! `C` is dominated by its own component (`u`'s commit counter), `C ≤ V_t`
//! exactly when `V_t[u] ≥ C[u]`, which lets each thread track a per-committer
//! *received frontier* instead of scanning all commits.

use std::collections::HashMap;

use dmt_api::{Tid, VectorClock};

/// A synchronization object participating in happens-before edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LrcObject {
    /// A deterministic mutex.
    Mutex(u32),
    /// A condition variable.
    Cond(u32),
    /// A barrier.
    Barrier(u32),
    /// A read-write lock (treated as one release/acquire chain).
    RwLock(u32),
    /// A thread's spawn/exit edges (creation and join).
    Thread(u32),
}

/// The Figure 16 estimator.
#[derive(Debug)]
pub struct LrcTracker {
    /// Per-thread vector clock.
    threads: Vec<VectorClock>,
    /// Per-object vector clock (created lazily).
    objects: HashMap<LrcObject, VectorClock>,
    /// Pages committed by each thread, indexed by that thread's commit
    /// counter (`pages[u][k-1]` = pages in `u`'s `k`-th commit).
    pages: Vec<Vec<u32>>,
    /// `frontier[t][u]`: how many of `u`'s commits thread `t` has received.
    frontier: Vec<Vec<u64>>,
    /// Total pages an LRC system would have propagated.
    propagated: u64,
}

impl LrcTracker {
    /// Tracker for up to `slots` threads.
    pub fn new(slots: usize) -> LrcTracker {
        LrcTracker {
            threads: (0..slots).map(|_| VectorClock::new(slots)).collect(),
            objects: HashMap::new(),
            pages: vec![Vec::new(); slots],
            frontier: vec![vec![0; slots]; slots],
            propagated: 0,
        }
    }

    /// Pages an LRC system would have propagated so far.
    pub fn pages_propagated(&self) -> u64 {
        self.propagated
    }

    /// Records a commit of `npages` pages by `t`.
    pub fn on_commit(&mut self, t: Tid, npages: u32) {
        if npages == 0 {
            return;
        }
        self.threads[t.index()].tick(t);
        self.pages[t.index()].push(npages);
        // A thread trivially possesses its own commit.
        self.frontier[t.index()][t.index()] = self.threads[t.index()].get(t);
    }

    /// Release edge: `t`'s knowledge flows into `obj`.
    pub fn on_release(&mut self, t: Tid, obj: LrcObject) {
        let n = self.threads.len();
        let vc = self
            .objects
            .entry(obj)
            .or_insert_with(|| VectorClock::new(n));
        vc.join(&self.threads[t.index()]);
    }

    /// Acquire edge: `obj`'s knowledge flows into `t`, and every commit
    /// that now happened-before `t` is charged as LRC propagation.
    pub fn on_acquire(&mut self, t: Tid, obj: LrcObject) {
        if let Some(vc) = self.objects.get(&obj) {
            self.threads[t.index()].join(vc);
        }
        self.settle(t);
    }

    /// Thread-start edge: the child inherits the parent's knowledge *and*
    /// its received set — a forked process starts with a copy of the
    /// parent's memory, so nothing propagates at creation.
    pub fn on_spawn(&mut self, parent: Tid, child: Tid) {
        let pvc = self.threads[parent.index()].clone();
        self.threads[child.index()].join(&pvc);
        let pf = self.frontier[parent.index()].clone();
        for (c, p) in self.frontier[child.index()].iter_mut().zip(&pf) {
            *c = (*c).max(*p);
        }
        // Anything beyond the inherited frontier that already happened
        // before the child (rare: pool hand-me-downs) settles normally.
        self.settle(child);
    }

    /// Charges every newly happened-before commit to `t`'s received set.
    fn settle(&mut self, t: Tid) {
        let ti = t.index();
        for u in 0..self.threads.len() {
            if u == ti {
                // A thread's own commits are local, never propagated.
                self.frontier[ti][u] = self.threads[ti].get(Tid(u as u32));
                continue;
            }
            let known = self.threads[ti].get(Tid(u as u32));
            let from = self.frontier[ti][u];
            for k in from..known {
                self.propagated += self.pages[u][k as usize] as u64;
            }
            self.frontier[ti][u] = known;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrelated_commits_are_not_propagated() {
        let mut l = LrcTracker::new(4);
        l.on_commit(Tid(0), 10);
        l.on_acquire(Tid(1), LrcObject::Mutex(0));
        assert_eq!(
            l.pages_propagated(),
            0,
            "no happens-before edge from T0's commit to T1's acquire"
        );
    }

    #[test]
    fn release_acquire_chain_propagates_once() {
        let mut l = LrcTracker::new(4);
        l.on_commit(Tid(0), 10);
        l.on_release(Tid(0), LrcObject::Mutex(0));
        l.on_acquire(Tid(1), LrcObject::Mutex(0));
        assert_eq!(l.pages_propagated(), 10);
        // Re-acquiring adds nothing new.
        l.on_acquire(Tid(1), LrcObject::Mutex(0));
        assert_eq!(l.pages_propagated(), 10);
    }

    #[test]
    fn own_commits_never_count() {
        let mut l = LrcTracker::new(2);
        l.on_commit(Tid(0), 5);
        l.on_release(Tid(0), LrcObject::Mutex(0));
        l.on_acquire(Tid(0), LrcObject::Mutex(0));
        assert_eq!(l.pages_propagated(), 0);
    }

    #[test]
    fn point_to_point_vs_barrier_broadcast() {
        // Under LRC, a commit released through lock A reaches only the
        // thread that acquires A; a barrier release reaches everyone.
        let mut per_lock = LrcTracker::new(3);
        per_lock.on_commit(Tid(0), 4);
        per_lock.on_release(Tid(0), LrcObject::Mutex(0));
        per_lock.on_acquire(Tid(1), LrcObject::Mutex(0));
        // T2 never touches lock 0: nothing flows to it.
        assert_eq!(per_lock.pages_propagated(), 4);

        let mut barrier = LrcTracker::new(3);
        barrier.on_commit(Tid(0), 4);
        for t in 0..3 {
            barrier.on_release(Tid(t), LrcObject::Barrier(0));
        }
        for t in 0..3 {
            barrier.on_acquire(Tid(t), LrcObject::Barrier(0));
        }
        assert_eq!(
            barrier.pages_propagated(),
            8,
            "both other threads receive T0's 4 pages"
        );
    }

    #[test]
    fn transitive_happens_before_counts() {
        let mut l = LrcTracker::new(3);
        l.on_commit(Tid(0), 3);
        l.on_release(Tid(0), LrcObject::Mutex(0));
        l.on_acquire(Tid(1), LrcObject::Mutex(0)); // +3
        l.on_commit(Tid(1), 2);
        l.on_release(Tid(1), LrcObject::Mutex(1));
        // T2 acquires lock 1: receives T1's commit AND, transitively,
        // T0's commit carried by T1's vector clock.
        l.on_acquire(Tid(2), LrcObject::Mutex(1)); // +2 +3
        assert_eq!(l.pages_propagated(), 8);
    }

    #[test]
    fn spawn_edge_is_free_fork_copies_memory() {
        let mut l = LrcTracker::new(2);
        l.on_commit(Tid(0), 6);
        l.on_spawn(Tid(0), Tid(1));
        assert_eq!(
            l.pages_propagated(),
            0,
            "a forked child starts with the parent's memory"
        );
        // But later commits do flow.
        l.on_commit(Tid(0), 2);
        l.on_release(Tid(0), LrcObject::Mutex(0));
        l.on_acquire(Tid(1), LrcObject::Mutex(0));
        assert_eq!(l.pages_propagated(), 2);
    }

    #[test]
    fn empty_commits_are_free() {
        let mut l = LrcTracker::new(2);
        l.on_commit(Tid(0), 0);
        l.on_release(Tid(0), LrcObject::Mutex(0));
        l.on_acquire(Tid(1), LrcObject::Mutex(0));
        assert_eq!(l.pages_propagated(), 0);
    }
}
