//! The Consequence runtime: lifecycle, worker threads, report assembly —
//! and runtime supervision: every workload thread runs inside a panic
//! boundary (containment, not crash), and a watchdog thread turns silent
//! deadlocks and scheduler-invariant violations into diagnoses.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmt_api::{
    Addr, BarrierId, CommonConfig, CondId, Job, MutexId, RunReport, Runtime, RwLockId, Tid,
};

use crate::ctx::Ctx;
use crate::options::Options;
use crate::shared::{BarrierSt, CondSt, Inner, Msg, MutexSt, RwSt, Shared, ThreadSt};

/// A deterministic multithreading runtime with TSO consistency.
///
/// Construct with [`ConsequenceRuntime::new`], create synchronization
/// objects and initialize the heap, then call [`Runtime::run`] once.
///
/// # Examples
///
/// ```
/// use consequence::{ConsequenceRuntime, Options};
/// use dmt_api::{CommonConfig, Runtime, RuntimeMemExt, ThreadCtx};
///
/// let mut rt = ConsequenceRuntime::new(CommonConfig::default(), Options::consequence_ic());
/// rt.init_u64(0, 41);
/// let report = rt.run(Box::new(|ctx| {
///     let v = ctx.ld_u64(0);
///     ctx.st_u64(0, v + 1);
/// }));
/// assert_eq!(rt.final_u64(0), 42);
/// assert!(report.virtual_cycles > 0);
/// ```
pub struct ConsequenceRuntime {
    sh: Arc<Shared>,
    name: &'static str,
    ran: bool,
}

impl ConsequenceRuntime {
    /// Creates a runtime with the given configuration and options.
    pub fn new(cfg: CommonConfig, opts: Options) -> ConsequenceRuntime {
        ConsequenceRuntime::new_with_replay(cfg, opts, None)
    }

    /// Creates a runtime whose token grants follow a recorded script
    /// (replay mode) when `replay` is set. Prefer the validated
    /// [`ConsequenceRuntime::new_replaying`] entry point.
    pub(crate) fn new_with_replay(
        cfg: CommonConfig,
        opts: Options,
        replay: Option<Arc<det_clock::ReplayCtl>>,
    ) -> ConsequenceRuntime {
        let name = match (opts.order, opts.single_global_lock) {
            (det_clock::OrderPolicy::InstructionCount, _) => "consequence-ic",
            (det_clock::OrderPolicy::RoundRobin, false) => "consequence-rr",
            (det_clock::OrderPolicy::RoundRobin, true) => "dwc",
        };
        ConsequenceRuntime {
            sh: Shared::new_replaying(cfg, opts, replay),
            name,
            ran: false,
        }
    }

    /// The active options (for tests and harnesses).
    pub fn options(&self) -> &Options {
        &self.sh.opts
    }

    /// Takes the recorded token-grant schedule: the deterministic total
    /// order of synchronization operations as `(thread, logical clock)`
    /// pairs. Empty unless [`Options::record_schedule`] was set. Two runs
    /// of a deterministic configuration produce identical schedules — the
    /// strongest witness this runtime offers, and a practical debugging
    /// trace ("which thread synchronized when").
    pub fn take_schedule(&mut self) -> Vec<(Tid, u64)> {
        std::mem::take(&mut self.sh.inner.lock().schedule)
    }

    fn assert_not_started(&self) {
        assert!(
            !self.sh.inner.lock().started,
            "objects must be created before run()"
        );
    }
}

impl Runtime for ConsequenceRuntime {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn create_mutex(&mut self) -> MutexId {
        self.assert_not_started();
        let mut inner = self.sh.inner.lock();
        inner.mutexes.push(MutexSt::default());
        MutexId(inner.mutexes.len() as u32 - 1)
    }

    fn create_cond(&mut self) -> CondId {
        self.assert_not_started();
        let mut inner = self.sh.inner.lock();
        inner.conds.push(CondSt::default());
        CondId(inner.conds.len() as u32 - 1)
    }

    fn create_rwlock(&mut self) -> RwLockId {
        self.assert_not_started();
        let mut inner = self.sh.inner.lock();
        inner.rwlocks.push(RwSt::default());
        RwLockId(inner.rwlocks.len() as u32 - 1)
    }

    fn create_barrier(&mut self, parties: usize) -> BarrierId {
        self.assert_not_started();
        assert!(parties > 0, "barrier needs at least one party");
        let mut inner = self.sh.inner.lock();
        inner.barriers.push(BarrierSt::new(parties));
        BarrierId(inner.barriers.len() as u32 - 1)
    }

    fn heap_len(&self) -> usize {
        self.sh.seg.len()
    }

    fn init_write(&mut self, addr: Addr, data: &[u8]) {
        self.assert_not_started();
        self.sh.seg.init_write(addr, data);
    }

    fn final_read(&self, addr: Addr, buf: &mut [u8]) {
        self.sh.seg.read_latest(addr, buf);
    }

    fn run(&mut self, main: Job) -> RunReport {
        assert!(!self.ran, "run() may only be called once");
        self.ran = true;
        let sh = Arc::clone(&self.sh);
        let start = Instant::now();

        // Register the main job as Tid(0).
        {
            let mut inner = sh.inner.lock();
            inner.started = true;
            inner.next_tid = 1;
            inner.live = 1;
            inner.threads.push(ThreadSt::default());
            inner.table.register(Tid::MAIN, 0, 0);
        }
        // Supervision: the watchdog turns a silent hang (deadlock, lost
        // waiter, stalled clock) into a diagnosis — or a recovery.
        let stop = Arc::new(AtomicBool::new(false));
        let watchdog = sh.opts.watchdog_stall_ms.map(|ms| {
            let sh2 = Arc::clone(&sh);
            let stop2 = Arc::clone(&stop);
            std::thread::spawn(move || watchdog_loop(sh2, ms, stop2))
        });

        let (ws, _mapped) = sh.seg.new_workspace(Tid::MAIN);
        let mut ctx = Ctx::new(Arc::clone(&sh), Tid::MAIN, ws, 0, 0, None);
        // Panic boundary: a panicking main job departs deterministically
        // (clock, token, poison) instead of tearing the process down.
        match catch_unwind(AssertUnwindSafe(|| main(&mut ctx))) {
            Ok(()) => ctx.finish(),
            Err(payload) => ctx.dispatch_panic(payload),
        }

        // Wait for every spawned thread to finish — and, when pooling, for
        // every worker to park itself back in the pool — then shut down.
        // On watchdog shutdown, blocked threads unwind as they observe the
        // flag; threads in pure compute can never observe it, so after a
        // bounded grace period they are abandoned (handles not joined).
        let (reports, counters, max_v, threads, fault, panics, stuck) = {
            let mut inner = sh.inner.lock();
            let mut grace = 0u32;
            let mut stuck = false;
            while inner.live > 0 || (sh.opts.thread_pool && inner.pool.len() < inner.handles.len())
            {
                if inner.shutdown {
                    let timed_out = sh
                        .cv
                        .wait_for(&mut inner, Duration::from_millis(100))
                        .timed_out();
                    if timed_out {
                        grace += 1;
                        if grace >= 20 {
                            stuck = true;
                            break;
                        }
                    }
                } else {
                    sh.cv.wait(&mut inner);
                }
            }
            for entry in inner.pool.drain(..) {
                let _ = entry.tx.send(Msg::Shutdown);
            }
            let handles = std::mem::take(&mut inner.handles);
            let mut reports = std::mem::take(&mut inner.reports);
            reports.sort_by_key(|(t, _)| *t);
            let mut counters = inner.counters;
            if let Some(l) = inner.lrc.as_ref() {
                counters.lrc_pages_propagated = l.pages_propagated();
            }
            let out = (
                reports,
                counters,
                inner.max_exit_v,
                inner.next_tid,
                inner.fault.take(),
                std::mem::take(&mut inner.panics),
                stuck,
            );
            drop(inner);
            if !stuck {
                for h in handles {
                    let _ = h.join();
                }
            }
            out
        };
        stop.store(true, Ordering::Release);
        if let Some(h) = watchdog {
            h.thread().unpark();
            let _ = h.join();
        }
        if stuck {
            eprintln!("[conseq] abandoning threads that never observed shutdown");
        }

        // Settle the commit pipeline before any observable is harvested:
        // final reads, the log digest, GC totals and the teardown witness
        // sample must all see the fully settled (serial-equivalent) state.
        sh.seg.flush_pipeline();

        let mut breakdown = dmt_api::Breakdown::default();
        for (_, b) in &reports {
            breakdown += *b;
        }
        let mut counters = counters;
        // Collector and allocator totals live on the segment, not in any
        // per-thread counter set: harvest them at report time.
        let (gc_dropped, gc_squashed) = sh.seg.gc_totals();
        counters.gc_versions_dropped = gc_dropped;
        counters.gc_versions_squashed = gc_squashed;
        counters.page_pool_hits = sh.seg.tracker().pool_hits();
        if let Some(pt) = sh.seg.pipeline_totals() {
            counters.settle_pages_deferred = pt.deferred_pages;
            counters.pretwin_hits = pt.pretwin_hits;
            counters.pretwin_misses = pt.pretwin_misses;
        }
        // Teardown sample: catches a run whose last epochs never
        // committed (pure compute tails) and the final trace occupancy.
        if sh.cfg.witness.enabled() {
            let clock_history = {
                let inner = sh.inner.lock();
                inner.table.max_history_len(sh.cfg.max_threads as u32)
            };
            sh.cfg.witness.observe(dmt_api::ResourceSample {
                retained_versions: sh.seg.retained_peak(),
                live_pages: sh.seg.tracker().live(),
                clock_history,
                trace_ring: sh.cfg.trace.occupancy(),
                pipeline_backlog: sh.seg.pipeline_backlog(),
            });
            sh.cfg.witness.record_durability(
                sh.cfg.trace.durable_flushes(),
                sh.cfg.trace.salvaged_pages(),
            );
        }
        // A degraded recording (disk sink hit a write fault mid-run) is a
        // run fault even though the computation itself finished: the
        // promised reproducer is truncated at the point of failure.
        let trace_fault = sh.cfg.trace.fault();
        let degraded = sh.degraded.load(Ordering::Relaxed) || trace_fault.is_some();
        let fault = fault.or(trace_fault);
        RunReport {
            virtual_cycles: max_v,
            wall: start.elapsed(),
            breakdown,
            per_thread: reports,
            counters,
            peak_pages: sh.seg.tracker().peak(),
            commit_log_hash: sh.seg.log_hash(),
            schedule_hash: sh.cfg.trace.schedule_hash(),
            events: sh.cfg.trace.counts(),
            threads,
            perturb_seed: sh.cfg.perturb.seed(),
            perturb_plan: sh.cfg.perturb.plan_digest(),
            panics,
            fault,
            degraded,
            replay_divergence: sh.cfg.trace.divergence().map(|d| d.to_string()),
        }
    }
}

/// Spawns a worker OS thread and returns the channel to hand it jobs.
/// Called with the runtime lock held (the worker blocks on its receiver
/// first, so it cannot deadlock against the caller).
pub(crate) fn spawn_worker(sh: &Arc<Shared>, inner: &mut Inner) -> Sender<Msg> {
    let (tx, rx): (Sender<Msg>, Receiver<Msg>) = channel();
    let sh2 = Arc::clone(sh);
    let self_tx = tx.clone();
    let handle = std::thread::spawn(move || worker_loop(sh2, rx, self_tx));
    inner.handles.push(handle);
    tx
}

fn worker_loop(sh: Arc<Shared>, rx: Receiver<Msg>, self_tx: Sender<Msg>) {
    // Without pooling, drop our own sender so the channel disconnects once
    // the single spawner's sender is gone, ending the loop.
    let self_tx = sh.opts.thread_pool.then_some(self_tx);
    while let Ok(Msg::Start {
        tid,
        job,
        clock,
        v,
        ws,
    }) = rx.recv()
    {
        let mut ctx = Ctx::new(Arc::clone(&sh), tid, ws, clock, v, self_tx.clone());
        // Panic boundary: the birth sync runs inside it too — round-robin
        // rendezvous can itself unwind on shutdown or injected faults.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Under round-robin ordering a newborn thread holds a rotation
            // slot it will not use until its first synchronization
            // operation, which would serialize the spawner behind this
            // thread's first chunk (real DThreads children rendezvous with
            // the runtime at birth). A null sync op at birth keeps the
            // rotation moving.
            if sh.opts.order == det_clock::OrderPolicy::RoundRobin {
                ctx.birth_sync();
            }
            job(&mut ctx);
        }));
        match result {
            // The exit protocol pools the workspace (or detaches it) while
            // holding the token, keeping pool contents deterministic.
            Ok(()) => ctx.finish(),
            // Containment: the dying thread departs the clock, releases or
            // reclaims the token, poisons what it held, and wakes joiners —
            // all under the token, so the departure itself is deterministic.
            Err(payload) => ctx.dispatch_panic(payload),
        }
    }
}

/// Wakes every thread however it might be waiting: the shared condvar and
/// every per-thread parker. Used on shutdown and failover, when a thread's
/// chosen wait condvar can no longer be predicted.
fn wake_everyone(sh: &Shared) {
    sh.cv.notify_all();
    for p in sh.parkers.iter() {
        p.notify_all();
    }
}

/// The supervisor: polls the token-grant counter and, when no logical
/// progress happens for `stall_ms` while threads are live, either
/// *recovers* (fast-scheduler invariant violation → fail over to the
/// reference table and keep running) or *diagnoses* (deadlock → emit a
/// full runtime census as [`dmt_api::DmtError::Deadlock`] and shut the
/// run down instead of hanging).
fn watchdog_loop(sh: Arc<Shared>, stall_ms: u64, stop: Arc<AtomicBool>) {
    let poll = Duration::from_millis((stall_ms / 4).clamp(10, 250));
    let stall = Duration::from_millis(stall_ms);
    let mut last_seq = 0u64;
    let mut last_change = Instant::now();
    loop {
        std::thread::park_timeout(poll);
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut inner = sh.inner.lock();
        if inner.shutdown {
            return;
        }
        if inner.live == 0 || inner.grant_seq != last_seq {
            last_seq = inner.grant_seq;
            last_change = Instant::now();
            continue;
        }
        if last_change.elapsed() < stall {
            continue;
        }
        // No token grant for a full stall window with live threads: either
        // the scheduler lost a waiter (recoverable) or the workload is
        // deadlocked (diagnosable). Check invariants first.
        match inner.table.check_invariants() {
            Err(detail) => {
                if inner.table.failover() {
                    eprintln!(
                        "[conseq] FAST-SCHEDULER INVARIANT VIOLATION: {detail}\n\
                         [conseq] failing over to the reference scheduler; \
                         the run continues degraded"
                    );
                    sh.degraded.store(true, Ordering::Release);
                    drop(inner);
                    wake_everyone(&sh);
                    last_change = Instant::now();
                    continue;
                }
                // Already on the reference table: the violation is
                // unrecoverable. Diagnose and shut down.
                let report = diagnose(&inner, &format!("scheduler invariant violation: {detail}"));
                eprintln!("{report}");
                inner.fault = Some(report);
                inner.shutdown = true;
                drop(inner);
                wake_everyone(&sh);
                return;
            }
            Ok(()) => {
                let report = diagnose(&inner, "no logical progress (deadlock suspected)");
                eprintln!("{report}");
                inner.fault = Some(report);
                inner.shutdown = true;
                drop(inner);
                wake_everyone(&sh);
                return;
            }
        }
    }
}

/// Renders a census of the stalled runtime: who holds the token, who waits
/// on what, and the state of every sync object — the diagnosis a hung run
/// would otherwise never yield.
fn diagnose(inner: &Inner, cause: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "[conseq] watchdog: {cause}");
    let _ = writeln!(
        s,
        "[conseq] token={:?} last_entrant={:?} grants={} live={}",
        inner.token, inner.last_entrant, inner.grant_seq, inner.live
    );
    for (i, t) in inner.threads.iter().enumerate() {
        if t.finished && t.joiners.is_empty() {
            continue;
        }
        let _ = writeln!(
            s,
            "[conseq]   t{i}: finished={} panicked={} wake={} wake_err={:?} joiners={:?}",
            t.finished, t.panicked, t.wake, t.wake_err, t.joiners
        );
    }
    for (i, m) in inner.mutexes.iter().enumerate() {
        if m.owner.is_some() || !m.waiters.is_empty() || m.poisoned.is_some() {
            let _ = writeln!(
                s,
                "[conseq]   mutex {i}: owner={:?} waiters={:?} poisoned={:?}",
                m.owner, m.waiters, m.poisoned
            );
        }
    }
    for (i, c) in inner.conds.iter().enumerate() {
        if !c.waiters.is_empty() {
            let _ = writeln!(s, "[conseq]   cond {i}: waiters={:?}", c.waiters);
        }
    }
    for (i, r) in inner.rwlocks.iter().enumerate() {
        if r.writer.is_some() || r.readers > 0 || !r.waiters.is_empty() || r.poisoned.is_some() {
            let _ = writeln!(
                s,
                "[conseq]   rwlock {i}: writer={:?} readers={} waiters={:?} poisoned={:?}",
                r.writer, r.readers, r.waiters, r.poisoned
            );
        }
    }
    for (i, b) in inner.barriers.iter().enumerate() {
        if !b.arrived.is_empty() || b.broken {
            let _ = writeln!(
                s,
                "[conseq]   barrier {i}: parties={} arrived={:?} phase={:?} broken={}",
                b.parties, b.arrived, b.phase, b.broken
            );
        }
    }
    for (t, msg) in &inner.panics {
        let _ = writeln!(s, "[conseq]   contained panic on {t:?}: {msg}");
    }
    s
}
