//! The Consequence runtime: lifecycle, worker threads, report assembly.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use dmt_api::{
    Addr, BarrierId, CommonConfig, CondId, Job, MutexId, RunReport, Runtime, RwLockId, Tid,
};

use crate::ctx::Ctx;
use crate::options::Options;
use crate::shared::{BarrierSt, CondSt, Inner, Msg, MutexSt, RwSt, Shared, ThreadSt};

/// A deterministic multithreading runtime with TSO consistency.
///
/// Construct with [`ConsequenceRuntime::new`], create synchronization
/// objects and initialize the heap, then call [`Runtime::run`] once.
///
/// # Examples
///
/// ```
/// use consequence::{ConsequenceRuntime, Options};
/// use dmt_api::{CommonConfig, Runtime, RuntimeMemExt, ThreadCtx};
///
/// let mut rt = ConsequenceRuntime::new(CommonConfig::default(), Options::consequence_ic());
/// rt.init_u64(0, 41);
/// let report = rt.run(Box::new(|ctx| {
///     let v = ctx.ld_u64(0);
///     ctx.st_u64(0, v + 1);
/// }));
/// assert_eq!(rt.final_u64(0), 42);
/// assert!(report.virtual_cycles > 0);
/// ```
pub struct ConsequenceRuntime {
    sh: Arc<Shared>,
    name: &'static str,
    ran: bool,
}

impl ConsequenceRuntime {
    /// Creates a runtime with the given configuration and options.
    pub fn new(cfg: CommonConfig, opts: Options) -> ConsequenceRuntime {
        let name = match (opts.order, opts.single_global_lock) {
            (det_clock::OrderPolicy::InstructionCount, _) => "consequence-ic",
            (det_clock::OrderPolicy::RoundRobin, false) => "consequence-rr",
            (det_clock::OrderPolicy::RoundRobin, true) => "dwc",
        };
        ConsequenceRuntime {
            sh: Shared::new(cfg, opts),
            name,
            ran: false,
        }
    }

    /// The active options (for tests and harnesses).
    pub fn options(&self) -> &Options {
        &self.sh.opts
    }

    /// Takes the recorded token-grant schedule: the deterministic total
    /// order of synchronization operations as `(thread, logical clock)`
    /// pairs. Empty unless [`Options::record_schedule`] was set. Two runs
    /// of a deterministic configuration produce identical schedules — the
    /// strongest witness this runtime offers, and a practical debugging
    /// trace ("which thread synchronized when").
    pub fn take_schedule(&mut self) -> Vec<(Tid, u64)> {
        std::mem::take(&mut self.sh.inner.lock().schedule)
    }

    fn assert_not_started(&self) {
        assert!(
            !self.sh.inner.lock().started,
            "objects must be created before run()"
        );
    }
}

impl Runtime for ConsequenceRuntime {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn create_mutex(&mut self) -> MutexId {
        self.assert_not_started();
        let mut inner = self.sh.inner.lock();
        inner.mutexes.push(MutexSt::default());
        MutexId(inner.mutexes.len() as u32 - 1)
    }

    fn create_cond(&mut self) -> CondId {
        self.assert_not_started();
        let mut inner = self.sh.inner.lock();
        inner.conds.push(CondSt::default());
        CondId(inner.conds.len() as u32 - 1)
    }

    fn create_rwlock(&mut self) -> RwLockId {
        self.assert_not_started();
        let mut inner = self.sh.inner.lock();
        inner.rwlocks.push(RwSt::default());
        RwLockId(inner.rwlocks.len() as u32 - 1)
    }

    fn create_barrier(&mut self, parties: usize) -> BarrierId {
        self.assert_not_started();
        assert!(parties > 0, "barrier needs at least one party");
        let mut inner = self.sh.inner.lock();
        inner.barriers.push(BarrierSt::new(parties));
        BarrierId(inner.barriers.len() as u32 - 1)
    }

    fn heap_len(&self) -> usize {
        self.sh.seg.len()
    }

    fn init_write(&mut self, addr: Addr, data: &[u8]) {
        self.assert_not_started();
        self.sh.seg.init_write(addr, data);
    }

    fn final_read(&self, addr: Addr, buf: &mut [u8]) {
        self.sh.seg.read_latest(addr, buf);
    }

    fn run(&mut self, main: Job) -> RunReport {
        assert!(!self.ran, "run() may only be called once");
        self.ran = true;
        let sh = Arc::clone(&self.sh);
        let start = Instant::now();

        // Register the main job as Tid(0).
        {
            let mut inner = sh.inner.lock();
            inner.started = true;
            inner.next_tid = 1;
            inner.live = 1;
            inner.threads.push(ThreadSt::default());
            inner.table.register(Tid::MAIN, 0, 0);
        }
        let (ws, _mapped) = sh.seg.new_workspace(Tid::MAIN);
        let mut ctx = Ctx::new(Arc::clone(&sh), Tid::MAIN, ws, 0, 0, None);
        main(&mut ctx);
        ctx.finish();

        // Wait for every spawned thread to finish — and, when pooling, for
        // every worker to park itself back in the pool — then shut down.
        let (reports, counters, max_v, threads) = {
            let mut inner = sh.inner.lock();
            while inner.live > 0 || (sh.opts.thread_pool && inner.pool.len() < inner.handles.len())
            {
                sh.cv.wait(&mut inner);
            }
            for entry in inner.pool.drain(..) {
                let _ = entry.tx.send(Msg::Shutdown);
            }
            let handles = std::mem::take(&mut inner.handles);
            let mut reports = std::mem::take(&mut inner.reports);
            reports.sort_by_key(|(t, _)| *t);
            let mut counters = inner.counters;
            if let Some(l) = inner.lrc.as_ref() {
                counters.lrc_pages_propagated = l.pages_propagated();
            }
            let out = (reports, counters, inner.max_exit_v, inner.next_tid);
            drop(inner);
            for h in handles {
                let _ = h.join();
            }
            out
        };

        let mut breakdown = dmt_api::Breakdown::default();
        for (_, b) in &reports {
            breakdown += *b;
        }
        let mut counters = counters;
        // Collector and allocator totals live on the segment, not in any
        // per-thread counter set: harvest them at report time.
        let (gc_dropped, gc_squashed) = sh.seg.gc_totals();
        counters.gc_versions_dropped = gc_dropped;
        counters.gc_versions_squashed = gc_squashed;
        counters.page_pool_hits = sh.seg.tracker().pool_hits();
        RunReport {
            virtual_cycles: max_v,
            wall: start.elapsed(),
            breakdown,
            per_thread: reports,
            counters,
            peak_pages: sh.seg.tracker().peak(),
            commit_log_hash: sh.seg.log_hash(),
            schedule_hash: sh.cfg.trace.schedule_hash(),
            events: sh.cfg.trace.counts(),
            threads,
            perturb_seed: sh.cfg.perturb.seed(),
            perturb_plan: sh.cfg.perturb.plan_digest(),
        }
    }
}

/// Spawns a worker OS thread and returns the channel to hand it jobs.
/// Called with the runtime lock held (the worker blocks on its receiver
/// first, so it cannot deadlock against the caller).
pub(crate) fn spawn_worker(sh: &Arc<Shared>, inner: &mut Inner) -> Sender<Msg> {
    let (tx, rx): (Sender<Msg>, Receiver<Msg>) = channel();
    let sh2 = Arc::clone(sh);
    let self_tx = tx.clone();
    let handle = std::thread::spawn(move || worker_loop(sh2, rx, self_tx));
    inner.handles.push(handle);
    tx
}

fn worker_loop(sh: Arc<Shared>, rx: Receiver<Msg>, self_tx: Sender<Msg>) {
    // Without pooling, drop our own sender so the channel disconnects once
    // the single spawner's sender is gone, ending the loop.
    let self_tx = sh.opts.thread_pool.then_some(self_tx);
    while let Ok(Msg::Start {
        tid,
        job,
        clock,
        v,
        ws,
    }) = rx.recv()
    {
        let mut ctx = Ctx::new(Arc::clone(&sh), tid, ws, clock, v, self_tx.clone());
        // Under round-robin ordering a newborn thread holds a rotation slot
        // it will not use until its first synchronization operation, which
        // would serialize the spawner behind this thread's first chunk
        // (real DThreads children rendezvous with the runtime at birth).
        // A null sync op at birth keeps the rotation moving.
        if sh.opts.order == det_clock::OrderPolicy::RoundRobin {
            ctx.birth_sync();
        }
        job(&mut ctx);
        // The exit protocol pools the workspace (or detaches it) while
        // holding the token, keeping pool contents deterministic.
        ctx.finish();
    }
}
