//! Property tests for byte-granularity last-writer-wins merging under
//! perturbed commit orderings.
//!
//! Conversion resolves same-page write conflicts by diffing a committer's
//! working copy against its fault-time twin and taking the changed bytes
//! over the currently committed page (`merge.rs`). The determinism
//! argument is that the final contents are a function of the *version DAG*
//! — who wrote which bytes, in which commit order — and not of the physical
//! schedule that computed the merges. These properties pin that down with a
//! seeded LCG (no external proptest dependency):
//!
//! * for writers with **disjoint** byte sets, every permutation of the
//!   commit order yields identical final contents;
//! * for **overlapping** writers, chained [`merge_into`] equals the
//!   byte-wise oracle "the highest-version writer of byte `i` wins", and
//!   equals the in-place [`apply_diff`] path the parallel barrier uses —
//!   two physically different merge schedules, one result.

use conversion::merge::{apply_diff, is_modified, merge_into};
use dmt_api::PAGE_SIZE;

/// Knuth 64-bit LCG + output mix, the workspace's stand-in for a proptest
/// generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^ (z >> 33)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

type Page = Box<[u8; PAGE_SIZE]>;

fn page_of(f: impl Fn(usize) -> u8) -> Page {
    let mut p = Box::new([0u8; PAGE_SIZE]);
    for i in 0..PAGE_SIZE {
        p[i] = f(i);
    }
    p
}

/// One writer in the version DAG: a twin (the base it faulted on) plus a
/// working copy with `writes` randomized byte stores.
struct Writer {
    work: Page,
    touched: Vec<usize>,
}

fn random_writer(rng: &mut Lcg, base: &Page, bytes: &[usize]) -> Writer {
    let mut work = Box::new(**base);
    let mut touched = Vec::new();
    for &i in bytes {
        // Force a value different from the base so the diff is non-empty
        // at exactly `bytes` (equal stores are invisible to the diff).
        let v = base[i].wrapping_add(1 + (rng.next() % 251) as u8);
        work[i] = v;
        touched.push(i);
    }
    Writer { work, touched }
}

/// Applies the writers' diffs in the given commit order via chained
/// `merge_into`, each against the then-latest page.
fn chain_merges(base: &Page, writers: &[&Writer], order: &[usize]) -> Page {
    let mut latest = Box::new(**base);
    for &w in order {
        let mut out = Box::new([0u8; PAGE_SIZE]);
        merge_into(base, &writers[w].work, &latest, &mut out);
        latest = out;
    }
    latest
}

/// The semantic oracle: byte `i` takes the value of the last writer (in
/// commit order) that touched it, else the base value.
fn oracle(base: &Page, writers: &[&Writer], order: &[usize]) -> Page {
    let mut out = Box::new(**base);
    for &w in order {
        for &i in &writers[w].touched {
            out[i] = writers[w].work[i];
        }
    }
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for at in 0..=p.len() {
            let mut q = p.clone();
            q.insert(at, n - 1);
            out.push(q);
        }
    }
    out
}

#[test]
fn disjoint_writers_commute_under_any_commit_order() {
    let mut rng = Lcg(0xD15C0);
    for round in 0..16 {
        let base = page_of(|i| (i as u64 ^ round).wrapping_mul(37) as u8);
        // Partition a random byte set across 3 writers (disjoint by
        // construction).
        let mut bytes: Vec<Vec<usize>> = vec![Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..48 {
            bytes[rng.below(3)].push(rng.below(PAGE_SIZE));
        }
        for b in &mut bytes {
            b.sort_unstable();
            b.dedup();
        }
        // A byte in two lists is no longer disjoint; drop duplicates across
        // writers too.
        let b0 = bytes[0].clone();
        bytes[1].retain(|i| !b0.contains(i));
        let b1 = bytes[1].clone();
        bytes[2].retain(|i| !b0.contains(i) && !b1.contains(i));

        let ws: Vec<Writer> = bytes
            .iter()
            .map(|b| random_writer(&mut rng, &base, b))
            .collect();
        let writers: Vec<&Writer> = ws.iter().collect();

        let reference = chain_merges(&base, &writers, &[0, 1, 2]);
        for order in permutations(3) {
            let got = chain_merges(&base, &writers, &order);
            assert_eq!(
                &got[..],
                &reference[..],
                "disjoint writers disagreed under commit order {order:?} (round {round})"
            );
        }
    }
}

#[test]
fn overlapping_writers_match_the_last_writer_wins_oracle() {
    let mut rng = Lcg(0xFACE);
    for round in 0..16 {
        let base = page_of(|i| (i % 251) as u8);
        // Deliberately overlapping byte sets (false sharing within a page).
        let hot: Vec<usize> = (0..8).map(|_| rng.below(PAGE_SIZE)).collect();
        let ws: Vec<Writer> = (0..3)
            .map(|_| {
                let mut bytes = hot.clone();
                for _ in 0..12 {
                    bytes.push(rng.below(PAGE_SIZE));
                }
                bytes.sort_unstable();
                bytes.dedup();
                random_writer(&mut rng, &base, &bytes)
            })
            .collect();
        let writers: Vec<&Writer> = ws.iter().collect();

        for order in permutations(3) {
            let merged = chain_merges(&base, &writers, &order);
            let want = oracle(&base, &writers, &order);
            assert_eq!(
                &merged[..],
                &want[..],
                "LWW oracle mismatch for commit order {order:?} (round {round})"
            );
        }
    }
}

#[test]
fn serial_and_parallel_merge_paths_agree() {
    // The parallel barrier commit applies diffs in place (`apply_diff`);
    // the asynchronous commit path chains `merge_into` against the latest
    // page. Same version DAG, physically different schedules — the final
    // segment contents must be identical.
    let mut rng = Lcg(0xBA55);
    for _ in 0..16 {
        let base = page_of(|i| (i % 13) as u8);
        let ws: Vec<Writer> = (0..4)
            .map(|_| {
                let bytes: Vec<usize> = (0..20).map(|_| rng.below(PAGE_SIZE)).collect();
                random_writer(&mut rng, &base, &bytes)
            })
            .collect();
        assert!(ws.iter().all(|w| is_modified(&base, &w.work)));
        let writers: Vec<&Writer> = ws.iter().collect();
        let order: Vec<usize> = (0..4).collect();

        let chained = chain_merges(&base, &writers, &order);
        let mut in_place = Box::new(*base);
        for &w in &order {
            apply_diff(&base, &writers[w].work, &mut in_place);
        }
        assert_eq!(&chained[..], &in_place[..]);
    }
}

/// One observation sequence of a lagging reader: the bytes it sees at each
/// of its (sparse, seeded) updates while a writer commits continuously.
/// `gc` controls whether the collector runs between commits.
fn lagging_reader_observations(seed: u64, gc: bool) -> Vec<Vec<u8>> {
    use conversion::Segment;
    use dmt_api::Tid;

    const PAGES: usize = 4;
    let mut rng = Lcg(seed);
    let seg = Segment::new(PAGES, 2);
    let (mut w, _) = seg.new_workspace(Tid(0));
    let (mut r, _) = seg.new_workspace(Tid(1));
    let mut seen = Vec::new();
    for round in 0..200u64 {
        // A few scattered writes, then commit.
        for _ in 0..1 + rng.below(6) {
            let addr = rng.below(PAGES * PAGE_SIZE);
            w.write_bytes(addr, &[(round as u8).wrapping_add(rng.next() as u8 | 1)]);
        }
        seg.commit(&mut w, None);
        seg.update(&mut w);
        // Draw the budget unconditionally so both runs consume the same
        // RNG stream and replay the same commit/update schedule.
        let budget = rng.below(8);
        if gc {
            // Seeded budget, including zero (a skipped pass) — pruning
            // must be invisible at every aggressiveness level.
            seg.gc(budget);
        }
        // The reader lags: it updates rarely, holding an old snapshot
        // across many commits (and, with `gc` on, across many prunes).
        if rng.below(16) == 0 {
            seg.update(&mut r);
            let mut buf = vec![0u8; PAGES * PAGE_SIZE];
            r.read_bytes(0, &mut buf);
            seen.push(buf);
        }
    }
    seg.update(&mut r);
    let mut buf = vec![0u8; PAGES * PAGE_SIZE];
    r.read_bytes(0, &mut buf);
    seen.push(buf);
    seen
}

#[test]
fn gc_while_a_reader_lags_is_invisible_to_its_updates() {
    // Version-chain pruning is pure bookkeeping: for the same seeded
    // commit history, a lagging reader must observe byte-identical
    // contents at every update whether or not the collector ran between
    // commits — dropping or squashing a version a live base can still
    // reach would corrupt exactly this observation sequence.
    for seed in [0xD06_F00Du64, 0xFEED, 0xABAD1DEA, 17, 99] {
        let with_gc = lagging_reader_observations(seed, true);
        let without = lagging_reader_observations(seed, false);
        assert_eq!(
            with_gc.len(),
            without.len(),
            "seed {seed:#x}: update schedules diverged"
        );
        for (i, (a, b)) in with_gc.iter().zip(&without).enumerate() {
            assert_eq!(
                a, b,
                "seed {seed:#x}: observation {i} changed under GC pruning"
            );
        }
    }
}
