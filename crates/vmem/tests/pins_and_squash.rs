//! The pin API and collector squashing: exact `update_to` targets survive
//! any amount of collection.

use conversion::Segment;
use dmt_api::Tid;

#[test]
fn pinned_target_survives_aggressive_squashing() {
    let seg = Segment::new(1, 3);
    let (mut a, _) = seg.new_workspace(Tid(0));
    let (mut b, _) = seg.new_workspace(Tid(1)); // stays at base 0
    let mut target = 0;
    for i in 1..=6u8 {
        a.write_bytes(0, &[i]);
        let cr = seg.commit(&mut a, None);
        seg.update(&mut a);
        if i == 3 {
            target = cr.version;
            seg.pin(target);
        }
    }
    // Collect as hard as possible: squashing must stop at the pinned id.
    seg.gc(usize::MAX);
    let ur = seg.update_to(&mut b, target);
    assert_eq!(ur.new_base, target);
    let mut buf = [0u8; 1];
    b.read_bytes(0, &mut buf);
    assert_eq!(buf[0], 3, "pinned point must replay exactly");
    seg.unpin(target);
    // After unpinning, the collector may merge across it.
    seg.gc(usize::MAX);
    seg.update(&mut b);
    b.read_bytes(0, &mut buf);
    assert_eq!(buf[0], 6);
}

#[test]
fn unpinned_history_squashes_down_to_one_version() {
    let seg = Segment::new(1, 2);
    let (mut a, _) = seg.new_workspace(Tid(0));
    let (_b, _) = seg.new_workspace(Tid(1)); // pins base 0
    for i in 1..=8u8 {
        a.write_bytes(0, &[i]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
    }
    assert_eq!(seg.retained_versions(), 8);
    seg.gc(usize::MAX);
    assert_eq!(
        seg.retained_versions(),
        1,
        "pinned-by-base history should squash to a single version"
    );
}

#[test]
fn pin_refcounts() {
    let seg = Segment::new(1, 2);
    let (mut a, _) = seg.new_workspace(Tid(0));
    let (_b, _) = seg.new_workspace(Tid(1));
    for i in 1..=4u8 {
        a.write_bytes(0, &[i]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
    }
    seg.pin(2);
    seg.pin(2);
    seg.gc(usize::MAX);
    let before = seg.retained_versions();
    assert!(before >= 2, "pin must block full squash (got {before})");
    seg.unpin(2);
    seg.gc(usize::MAX);
    assert_eq!(seg.retained_versions(), before, "still one reference");
    seg.unpin(2);
    seg.gc(usize::MAX);
    assert_eq!(seg.retained_versions(), 1);
}

/// Propagation accounting is identical whether or not the walked history
/// was squashed.
#[test]
fn propagation_counts_ignore_squash_state() {
    let run = |squash: bool| {
        let seg = Segment::new(2, 3);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (mut b, _) = seg.new_workspace(Tid(1));
        let (_c, _) = seg.new_workspace(Tid(2)); // pins base 0
        for i in 1..=5u8 {
            a.write_bytes((i as usize % 2) * 4096, &[i]);
            seg.commit(&mut a, None);
            seg.update(&mut a);
        }
        if squash {
            seg.gc(usize::MAX);
        }
        seg.update(&mut b).pages_propagated
    };
    assert_eq!(run(false), run(true));
}
