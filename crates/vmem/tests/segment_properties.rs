//! Property-style tests for the versioned segment: arbitrary interleavings
//! of writes, commits, updates and GC must match a flat-memory model and
//! never violate GC safety.
//!
//! Originally `proptest` properties; now scripted pseudo-random cases from
//! a local LCG so the workspace builds with no external dependencies.

use conversion::Segment;
use dmt_api::{Tid, PAGE_SIZE};

const THREADS: usize = 3;
const PAGES: usize = 2;

/// Deterministic LCG (MMIX constants) driving case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scripted action against the segment.
#[derive(Clone, Debug)]
enum Act {
    Write { t: usize, addr: usize, val: u8 },
    CommitAndUpdate { t: usize },
    Gc { budget: usize },
}

fn gen_script(rng: &mut Rng) -> Vec<Act> {
    let len = rng.below(80) as usize;
    (0..len)
        .map(|_| match rng.below(3) {
            0 => Act::Write {
                t: rng.below(THREADS as u64) as usize,
                addr: rng.below((PAGES * PAGE_SIZE) as u64) as usize,
                val: rng.next() as u8,
            },
            1 => Act::CommitAndUpdate {
                t: rng.below(THREADS as u64) as usize,
            },
            _ => Act::Gc {
                budget: rng.below(8) as usize,
            },
        })
        .collect()
}

/// Model: each thread owns a private overlay over a global flat array;
/// commit-and-update folds the overlay into the global (changed bytes
/// win) and clears it. The segment must agree at every commit point
/// and at the end — under any GC schedule.
#[test]
fn segment_matches_flat_model_under_gc() {
    let mut rng = Rng(0xA1_A1_A1);
    for _ in 0..96 {
        let script = gen_script(&mut rng);
        let seg = Segment::new(PAGES, THREADS);
        let mut spaces: Vec<_> = (0..THREADS)
            .map(|t| seg.new_workspace(Tid(t as u32)).0)
            .collect();

        let mut global = vec![0u8; PAGES * PAGE_SIZE];
        let mut overlay: Vec<std::collections::HashMap<usize, u8>> =
            vec![Default::default(); THREADS];

        for act in &script {
            match act {
                Act::Write { t, addr, val } => {
                    spaces[*t].write_bytes(*addr, &[*val]);
                    overlay[*t].insert(*addr, *val);
                }
                Act::CommitAndUpdate { t } => {
                    seg.commit(&mut spaces[*t], None);
                    seg.update(&mut spaces[*t]);
                    for (addr, val) in overlay[*t].drain() {
                        global[addr] = val;
                    }
                    // After commit+update this thread's view must equal
                    // the model's global overlaid with nothing.
                    let mut view = vec![0u8; PAGES * PAGE_SIZE];
                    spaces[*t].read_bytes(0, &mut view);
                    // Other threads' uncommitted overlays are invisible,
                    // so the view equals the model global exactly.
                    assert_eq!(&view, &global);
                }
                Act::Gc { budget } => {
                    seg.gc(*budget);
                }
            }
        }
        // Drain all overlays in thread order and compare final memory.
        for t in 0..THREADS {
            seg.commit(&mut spaces[t], None);
            for (addr, val) in overlay[t].drain() {
                global[addr] = val;
            }
        }
        let mut out = vec![0u8; PAGES * PAGE_SIZE];
        seg.read_latest(0, &mut out);
        assert_eq!(out, global);
    }
}

/// Live-page accounting: peak never decreases, live never exceeds
/// peak, and after full GC with all workspaces current, live pages are
/// bounded by snapshots + latest (no leaked versions).
#[test]
fn page_accounting_invariants() {
    let mut rng = Rng(0xB2_B2_B2);
    for _ in 0..96 {
        let script = gen_script(&mut rng);
        let seg = Segment::new(PAGES, THREADS);
        let mut spaces: Vec<_> = (0..THREADS)
            .map(|t| seg.new_workspace(Tid(t as u32)).0)
            .collect();
        let mut peak_seen = 0;
        for act in &script {
            match act {
                Act::Write { t, addr, val } => {
                    spaces[*t].write_bytes(*addr, &[*val]);
                }
                Act::CommitAndUpdate { t } => {
                    seg.commit(&mut spaces[*t], None);
                    seg.update(&mut spaces[*t]);
                }
                Act::Gc { budget } => {
                    seg.gc(*budget);
                }
            }
            let live = seg.tracker().live();
            let peak = seg.tracker().peak();
            assert!(live <= peak);
            assert!(peak >= peak_seen, "peak must be monotone");
            peak_seen = peak;
        }
        // Settle everyone and collect fully.
        for ws in spaces.iter_mut() {
            seg.commit(ws, None);
            seg.update(ws);
        }
        seg.gc(usize::MAX);
        // Bound: latest table + per-workspace snapshots + retained
        // versions (≤1 squashed pinned version's pages).
        let bound = PAGES * (1 + THREADS) + PAGES;
        assert!(
            seg.tracker().live() <= bound,
            "live {} exceeds bound {}",
            seg.tracker().live(),
            bound
        );
    }
}

/// `update_to` is equivalent to a prefix of `update`: updating to an
/// intermediate version then to latest equals one update to latest.
#[test]
fn update_to_composes() {
    let mut rng = Rng(0xC3_C3_C3);
    for _ in 0..32 {
        let nvals = 1 + rng.below(9) as usize;
        let vals: Vec<u8> = (0..nvals).map(|_| rng.next() as u8).collect();
        let seg = Segment::new(1, 3);
        let mut w = seg.new_workspace(Tid(0)).0;
        let mut ids = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            w.write_bytes(i % PAGE_SIZE, &[*v | 1]);
            let cr = seg.commit(&mut w, None);
            seg.update(&mut w);
            ids.push(cr.version);
        }
        // A fresh reader steps through half, then to the end.
        let mut a = seg.new_workspace(Tid(1)).0;
        // (Fresh workspaces snapshot latest; rewind by making another
        // segment pass instead: step exact ids.)
        let mid = ids[ids.len() / 2];
        let r1 = seg.update_to(&mut a, mid);
        let r2 = seg.update_to(&mut a, *ids.last().expect("nonempty"));
        assert_eq!(
            r1.pages_propagated + r2.pages_propagated,
            0,
            "fresh snapshot is already current; nothing to apply"
        );
        let mut one = vec![0u8; PAGE_SIZE];
        a.read_bytes(0, &mut one);
        let mut latest = vec![0u8; PAGE_SIZE];
        seg.read_latest(0, &mut latest);
        assert_eq!(one, latest);
    }
}
