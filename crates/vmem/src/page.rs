//! Pages, live-page accounting, and the freed-page pool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use dmt_api::sync::{Condvar, Mutex};
use dmt_api::PAGE_SIZE;

/// Shared, immutable reference to a committed or snapshot page.
pub type PageRef = Arc<PageBuf>;

/// Upper bound on pooled free pages per segment (16 MiB of 4 KiB pages).
/// Beyond this the steady state is covered and extra frees go back to the
/// allocator, so a transient spike cannot pin memory forever.
const POOL_CAP: usize = 4096;

/// Tracks the number of distinct live pages so a run can report its peak
/// memory footprint (Figure 12 of the Consequence paper), and recycles
/// freed page buffers so the commit/update steady state allocates nothing.
///
/// Every [`PageBuf`] holds a handle to the tracker of the segment that
/// created it; construction increments the live count and `Drop` decrements
/// it, so the count covers pages reachable from the latest version, retained
/// old versions, workspace snapshots, twins and working copies — exactly the
/// segment's physical footprint. On drop the raw 4 KiB buffer is parked in
/// the tracker's pool (up to `POOL_CAP`, 4096 pages); the next fault-time twin copy or
/// merge output reuses it instead of hitting the allocator. Pooled buffers
/// are *not* live pages.
#[derive(Debug, Default)]
pub struct PageTracker {
    live: AtomicUsize,
    peak: AtomicUsize,
    pool: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
}

impl PageTracker {
    /// Creates a tracker with zero live pages and an empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(PageTracker::default())
    }

    /// Currently live pages.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Highest live-page count observed so far.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Page allocations served from the recycle pool.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// Page allocations that fell through to the system allocator.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.load(Ordering::Relaxed)
    }

    /// Free pages currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }

    fn incr(&self) {
        let now = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn decr(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Takes a recycled buffer (contents unspecified), or `None` when the
    /// pool is empty.
    pub(crate) fn take(&self) -> Option<Box<[u8; PAGE_SIZE]>> {
        let got = self.pool.lock().pop();
        match got {
            Some(b) => {
                self.pool_hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => {
                self.pool_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn park(&self, buf: Box<[u8; PAGE_SIZE]>) {
        let mut pool = self.pool.lock();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }
}

/// Settle latch for a page published by the pipelined commit before its
/// byte merge has run. The background worker fills `cell` exactly once,
/// then flips the flag under `mu` and broadcasts; late readers block on
/// the condvar, racing readers that arrive after the fill take the
/// lock-free `cell.get()` fast path.
#[derive(Debug, Default)]
struct PendingCell {
    cell: OnceLock<Box<[u8; PAGE_SIZE]>>,
    mu: Mutex<bool>,
    cv: Condvar,
}

/// One 4 KiB page of segment memory.
///
/// Pages are immutable once wrapped in a [`PageRef`]; mutation happens only
/// on a thread's private working copy (a `Box<PageBuf>`) before it is
/// committed. A page created by `PageBuf::deferred` is a *shell*: its
/// contents arrive later via `PageBuf::settle_fill`, and readers block
/// on the settle latch until they do.
#[derive(Debug)]
pub struct PageBuf {
    /// `None` only transiently inside `Drop`, where the buffer is moved
    /// back to the tracker's pool — or for the whole pre-settle life of a
    /// deferred page, whose buffer lives in `pending` once filled.
    data: Option<Box<[u8; PAGE_SIZE]>>,
    /// Settle latch; `Some` only for deferred pages.
    pending: Option<PendingCell>,
    tracker: Arc<PageTracker>,
}

impl PageBuf {
    /// A zero-filled page accounted against `tracker`.
    pub fn zeroed(tracker: &Arc<PageTracker>) -> PageBuf {
        tracker.incr();
        let data = match tracker.take() {
            Some(mut b) => {
                b.fill(0);
                b
            }
            None => Box::new([0u8; PAGE_SIZE]),
        };
        PageBuf {
            data: Some(data),
            pending: None,
            tracker: Arc::clone(tracker),
        }
    }

    /// A copy of `src` accounted against the same tracker.
    pub fn duplicate(src: &PageBuf) -> PageBuf {
        src.tracker.incr();
        let data = match src.tracker.take() {
            Some(mut b) => {
                b.copy_from_slice(src.bytes());
                b
            }
            None => Box::new(*src.bytes()),
        };
        PageBuf {
            data: Some(data),
            pending: None,
            tracker: Arc::clone(&src.tracker),
        }
    }

    /// A deferred page shell: accounted live immediately, contents filled
    /// later by [`PageBuf::settle_fill`]. Used by the pipelined commit to
    /// publish a merged page's identity before the merge has run.
    pub(crate) fn deferred(tracker: &Arc<PageTracker>) -> PageBuf {
        tracker.incr();
        PageBuf {
            data: None,
            pending: Some(PendingCell::default()),
            tracker: Arc::clone(tracker),
        }
    }

    /// Delivers a deferred page's contents and releases every waiting
    /// reader. Must be called exactly once, and only on a deferred page.
    pub(crate) fn settle_fill(&self, buf: Box<[u8; PAGE_SIZE]>) {
        let p = self.pending.as_ref().expect("settle_fill on a data page");
        assert!(p.cell.set(buf).is_ok(), "page settled twice");
        *p.mu.lock() = true;
        p.cv.notify_all();
    }

    /// Read access to the page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        if let Some(d) = &self.data {
            return d;
        }
        self.wait_settled()
    }

    /// Slow path of [`PageBuf::bytes`] for deferred pages: lock-free once
    /// settled, blocks on the settle latch otherwise.
    #[cold]
    fn wait_settled(&self) -> &[u8; PAGE_SIZE] {
        let p = self.pending.as_ref().expect("page present outside drop");
        if let Some(b) = p.cell.get() {
            return b;
        }
        let mut g = p.mu.lock();
        while !*g {
            p.cv.wait(&mut g);
        }
        p.cell.get().expect("flag set only after fill")
    }

    /// Write access to the page bytes (only possible pre-publication, while
    /// the page is still uniquely owned).
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        self.data.as_mut().expect("page present outside drop")
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        self.tracker.decr();
        if let Some(buf) = self.data.take() {
            self.tracker.park(buf);
        } else if let Some(p) = self.pending.take() {
            if let Some(buf) = p.cell.into_inner() {
                self.tracker.park(buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_live_and_peak() {
        let t = PageTracker::new();
        let a = PageBuf::zeroed(&t);
        let b = PageBuf::duplicate(&a);
        assert_eq!(t.live(), 2);
        drop(a);
        assert_eq!(t.live(), 1);
        assert_eq!(t.peak(), 2);
        drop(b);
        assert_eq!(t.live(), 0);
        assert_eq!(t.peak(), 2);
    }

    #[test]
    fn duplicate_copies_bytes() {
        let t = PageTracker::new();
        let mut a = PageBuf::zeroed(&t);
        a.bytes_mut()[17] = 0xab;
        let b = PageBuf::duplicate(&a);
        assert_eq!(b.bytes()[17], 0xab);
        // And the copy is independent.
        a.bytes_mut()[17] = 0xcd;
        assert_eq!(b.bytes()[17], 0xab);
    }

    #[test]
    fn arc_sharing_does_not_inflate_count() {
        let t = PageTracker::new();
        let a: PageRef = Arc::new(PageBuf::zeroed(&t));
        let b = Arc::clone(&a);
        assert_eq!(t.live(), 1);
        drop(a);
        drop(b);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn dropped_pages_are_recycled_not_reallocated() {
        let t = PageTracker::new();
        let mut a = PageBuf::zeroed(&t);
        a.bytes_mut().fill(0xee);
        drop(a);
        assert_eq!(t.pooled(), 1);
        let hits_before = t.pool_hits();
        // The recycled buffer is reused and re-zeroed.
        let b = PageBuf::zeroed(&t);
        assert_eq!(t.pool_hits(), hits_before + 1);
        assert_eq!(t.pooled(), 0);
        assert!(b.bytes().iter().all(|&x| x == 0), "recycled page is zeroed");
    }

    #[test]
    fn deferred_page_blocks_readers_until_settled() {
        let t = PageTracker::new();
        let shell: PageRef = Arc::new(PageBuf::deferred(&t));
        assert_eq!(t.live(), 1, "shells are live pages from birth");
        let reader = {
            let shell = Arc::clone(&shell);
            std::thread::spawn(move || shell.bytes()[7])
        };
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf[7] = 0x5e;
        shell.settle_fill(buf);
        assert_eq!(reader.join().unwrap(), 0x5e);
        // Late readers take the settled fast path.
        assert_eq!(shell.bytes()[7], 0x5e);
    }

    #[test]
    fn dropped_settled_shell_parks_its_buffer() {
        let t = PageTracker::new();
        let shell = PageBuf::deferred(&t);
        shell.settle_fill(Box::new([1u8; PAGE_SIZE]));
        drop(shell);
        assert_eq!(t.live(), 0);
        assert_eq!(t.pooled(), 1, "settled buffer is recycled");
        // An unsettled shell just goes away.
        drop(PageBuf::deferred(&t));
        assert_eq!(t.live(), 0);
        assert_eq!(t.pooled(), 1);
    }

    #[test]
    fn duplicate_from_pool_copies_source() {
        let t = PageTracker::new();
        drop(PageBuf::zeroed(&t)); // seed the pool
        let mut src = PageBuf::zeroed(&t);
        src.bytes_mut()[5] = 9;
        drop(PageBuf::zeroed(&t)); // ensure a pooled buffer is available
        let hits = t.pool_hits();
        let dup = PageBuf::duplicate(&src);
        assert_eq!(t.pool_hits(), hits + 1);
        assert_eq!(dup.bytes()[5], 9);
    }
}
