//! Pages and live-page accounting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dmt_api::PAGE_SIZE;

/// Shared, immutable reference to a committed or snapshot page.
pub type PageRef = Arc<PageBuf>;

/// Tracks the number of distinct live pages so a run can report its peak
/// memory footprint (Figure 12 of the Consequence paper).
///
/// Every [`PageBuf`] holds a handle to the tracker of the segment that
/// created it; construction increments the live count and `Drop` decrements
/// it, so the count covers pages reachable from the latest version, retained
/// old versions, workspace snapshots, twins and working copies — exactly the
/// segment's physical footprint.
#[derive(Debug, Default)]
pub struct PageTracker {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl PageTracker {
    /// Creates a tracker with zero live pages.
    pub fn new() -> Arc<Self> {
        Arc::new(PageTracker::default())
    }

    /// Currently live pages.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Highest live-page count observed so far.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    fn incr(&self) {
        let now = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn decr(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One 4 KiB page of segment memory.
///
/// Pages are immutable once wrapped in a [`PageRef`]; mutation happens only
/// on a thread's private working copy (a `Box<PageBuf>`) before it is
/// committed.
#[derive(Debug)]
pub struct PageBuf {
    data: Box<[u8; PAGE_SIZE]>,
    tracker: Arc<PageTracker>,
}

impl PageBuf {
    /// A zero-filled page accounted against `tracker`.
    pub fn zeroed(tracker: &Arc<PageTracker>) -> PageBuf {
        tracker.incr();
        PageBuf {
            data: Box::new([0u8; PAGE_SIZE]),
            tracker: Arc::clone(tracker),
        }
    }

    /// A copy of `src` accounted against the same tracker.
    pub fn duplicate(src: &PageBuf) -> PageBuf {
        src.tracker.incr();
        PageBuf {
            data: Box::new(*src.data),
            tracker: Arc::clone(&src.tracker),
        }
    }

    /// Read access to the page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the page bytes (only possible pre-publication, while
    /// the page is still uniquely owned).
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        self.tracker.decr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_live_and_peak() {
        let t = PageTracker::new();
        let a = PageBuf::zeroed(&t);
        let b = PageBuf::duplicate(&a);
        assert_eq!(t.live(), 2);
        drop(a);
        assert_eq!(t.live(), 1);
        assert_eq!(t.peak(), 2);
        drop(b);
        assert_eq!(t.live(), 0);
        assert_eq!(t.peak(), 2);
    }

    #[test]
    fn duplicate_copies_bytes() {
        let t = PageTracker::new();
        let mut a = PageBuf::zeroed(&t);
        a.bytes_mut()[17] = 0xab;
        let b = PageBuf::duplicate(&a);
        assert_eq!(b.bytes()[17], 0xab);
        // And the copy is independent.
        a.bytes_mut()[17] = 0xcd;
        assert_eq!(b.bytes()[17], 0xab);
    }

    #[test]
    fn arc_sharing_does_not_inflate_count() {
        let t = PageTracker::new();
        let a: PageRef = Arc::new(PageBuf::zeroed(&t));
        let b = Arc::clone(&a);
        assert_eq!(t.live(), 1);
        drop(a);
        drop(b);
        assert_eq!(t.live(), 0);
    }
}
