//! Per-thread base-version registry, consulted by the garbage collector.

use std::sync::atomic::{AtomicU64, Ordering};

use dmt_api::Tid;

/// Sentinel base for threads that are not attached to the segment.
const DEAD: u64 = u64::MAX;

/// Tracks, for each thread slot, the version its workspace is based on.
///
/// The collector may only reclaim versions every live workspace has already
/// replayed, i.e. versions with id ≤ the minimum registered base. A
/// generation counter bumps on every base change so the collector can skip
/// rescanning history when nothing moved since its last pass.
#[derive(Debug)]
pub struct Registry {
    bases: Vec<AtomicU64>,
    generation: AtomicU64,
}

impl Registry {
    /// Registry with `slots` thread slots, all initially dead.
    pub fn new(slots: usize) -> Self {
        Registry {
            bases: (0..slots).map(|_| AtomicU64::new(DEAD)).collect(),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.bases.len()
    }

    /// Marks `tid` live with base version `base`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` exceeds the slot count.
    pub fn set_base(&self, tid: Tid, base: u64) {
        self.bases[tid.index()].store(base, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Marks `tid` detached; its workspace no longer pins versions.
    pub fn mark_dead(&self, tid: Tid) {
        self.bases[tid.index()].store(DEAD, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Monotonic counter of base changes; equal values mean no workspace
    /// moved between two reads.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Minimum base version across live threads, or `None` if no thread is
    /// attached.
    pub fn min_live_base(&self) -> Option<u64> {
        let min = self
            .bases
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .min()
            .unwrap_or(DEAD);
        if min == DEAD {
            None
        } else {
            Some(min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_has_no_min() {
        let r = Registry::new(4);
        assert_eq!(r.min_live_base(), None);
    }

    #[test]
    fn min_tracks_live_threads_only() {
        let r = Registry::new(4);
        r.set_base(Tid(0), 10);
        r.set_base(Tid(2), 7);
        assert_eq!(r.min_live_base(), Some(7));
        r.mark_dead(Tid(2));
        assert_eq!(r.min_live_base(), Some(10));
        r.mark_dead(Tid(0));
        assert_eq!(r.min_live_base(), None);
    }

    #[test]
    fn generation_bumps_on_every_base_change() {
        let r = Registry::new(2);
        let g0 = r.generation();
        r.set_base(Tid(0), 3);
        assert!(r.generation() > g0);
        let g1 = r.generation();
        r.mark_dead(Tid(0));
        assert!(r.generation() > g1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        let r = Registry::new(2);
        r.set_base(Tid(5), 0);
    }
}
