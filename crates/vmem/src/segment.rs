//! The versioned shared-memory segment.

use std::collections::VecDeque;
use std::sync::Arc;

use dmt_api::sync::Mutex;

use dmt_api::{Addr, Fnv1a, PerturbHandle, PerturbSite, Tid, VectorClock, PAGE_SIZE};

use crate::merge;
use crate::page::{PageBuf, PageRef, PageTracker};
use crate::pipeline::{Job, MergeJob, PipelineTotals, SettlePool, TwinStash};
use crate::registry::Registry;
use crate::version::Version;
use crate::workspace::Workspace;

/// A pre-merged version ready to install: committing thread, its pages
/// (index, content), and the TSO vector clock to attach.
pub(crate) type BuiltVersion = (Tid, Vec<(u32, PageRef)>, Option<Arc<VectorClock>>);

/// Outcome of a [`Segment::commit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitResult {
    /// Id of the created version, or the pre-existing latest id if the
    /// workspace had no modifications to publish.
    pub version: u64,
    /// Pages published.
    pub pages: u32,
    /// Pages that conflicted with a remote commit and were byte-merged.
    pub merged: u32,
    /// FNV-1a digest of the published page indices, in order — a compact
    /// witness of the dirty-page *set*, not just its size. Zero when no
    /// pages were published.
    pub page_set: u64,
}

/// Outcome of a [`Segment::gc`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcResult {
    /// Versions dropped outright (every live workspace had replayed them).
    pub dropped: usize,
    /// Version pairs squashed into one (history pinned by a lagging
    /// workspace, compacted in place).
    pub squashed: usize,
}

impl GcResult {
    /// Total collector work units spent (drops + squashes).
    pub fn spent(&self) -> usize {
        self.dropped + self.squashed
    }
}

/// Outcome of a [`Segment::update`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateResult {
    /// Version the workspace is now based on.
    pub new_base: u64,
    /// Pages applied that were committed by *other* threads — the paper's
    /// "pages propagated" metric.
    pub pages_propagated: u64,
    /// Versions replayed.
    pub versions_applied: u64,
}

pub(crate) struct SegInner {
    /// Id the next commit will receive; the latest committed id is
    /// `next_id - 1` (id 0 is the implicit zero-filled initial version).
    next_id: u64,
    /// Id of `versions.front()`, when non-empty.
    first_retained: u64,
    /// Retained version history (trimmed by [`Segment::gc`]).
    versions: VecDeque<Version>,
    /// Version ids some protocol will still `update_to` exactly; the
    /// collector must not squash across them. Refcounted.
    pins: std::collections::BTreeMap<u64, u32>,
    /// Per-version page counts for propagation accounting, parallel to
    /// `versions` but never squashed (16 bytes per commit), so the
    /// "pages propagated" metric is independent of collector progress.
    counts: VecDeque<(u64, u32, Tid)>,
    /// Materialized latest page table.
    latest: Vec<PageRef>,
    /// Running digest of `(id, committer, page, content)` for every commit:
    /// the determinism witness.
    log: Fnv1a,
    /// Registry generation and `next_id` observed by the last collector
    /// pass that ran out of *work* (not budget). While both are unchanged
    /// — no workspace moved, nothing new committed, no pin released — a
    /// [`Segment::gc`] call is a no-op and returns without scanning.
    gc_seen: Option<(u64, u64)>,
    /// Cumulative versions dropped by the collector.
    gc_dropped_total: u64,
    /// Cumulative version pairs squashed by the collector.
    gc_squashed_total: u64,
    /// High-water mark of `versions.len()`, updated at commit *before*
    /// the collector trims, so the resource witness sees intra-epoch
    /// spikes the post-GC gauge would hide.
    retained_peak: usize,
    /// Pipelined mode only: logical `(id, base_id)` mirror of `versions`
    /// with every *planned* (possibly not yet executed) collector pass
    /// already applied. GC decisions and `retained_peak` come from here,
    /// so they are pure functions of the commit/GC call sequence — the
    /// settle pool's wall-clock lag is invisible to them.
    mirror: VecDeque<(u64, u64)>,
}

/// A version-controlled memory segment (user-space Conversion).
///
/// Thread safety: all methods take `&self`; internal state is lock-
/// protected. **Determinism is the caller's contract** — commits must be
/// externally serialized in a deterministic order (Consequence holds the
/// global token around every commit), and updates must happen at
/// deterministic points. The segment then guarantees deterministic
/// contents: byte-granularity last-writer-wins in commit order.
pub struct Segment {
    inner: Arc<Mutex<SegInner>>,
    tracker: Arc<PageTracker>,
    registry: Registry,
    npages: usize,
    /// Fault injector for commit/update stalls (`dmt-stress`); off by
    /// default. Real-time jitter only — the segment has no virtual-time
    /// accounting of its own.
    perturb: PerturbHandle,
    /// Background settle pool: `Some` on the pipelined commit path,
    /// `None` on the serial oracle path.
    pipeline: Option<SettlePool>,
}

impl Segment {
    /// A zero-filled segment of `npages` pages, with `slots` thread slots.
    pub fn new(npages: usize, slots: usize) -> Segment {
        let tracker = PageTracker::new();
        let latest: Vec<PageRef> = (0..npages)
            .map(|_| Arc::new(PageBuf::zeroed(&tracker)))
            .collect();
        Segment {
            inner: Arc::new(Mutex::new(SegInner {
                next_id: 1,
                first_retained: 1,
                versions: VecDeque::new(),
                pins: std::collections::BTreeMap::new(),
                counts: VecDeque::new(),
                latest,
                log: Fnv1a::new(),
                gc_seen: None,
                gc_dropped_total: 0,
                gc_squashed_total: 0,
                retained_peak: 0,
                mirror: VecDeque::new(),
            })),
            tracker: Arc::clone(&tracker),
            registry: Registry::new(slots),
            npages,
            perturb: PerturbHandle::off(),
            pipeline: None,
        }
    }

    /// Switches this segment to the pipelined commit path with `workers`
    /// background settle threads. Must be called before any workspace is
    /// created. `workers == 0` is the *stalled-pool* regime: jobs queue
    /// but only [`Segment::flush_pipeline`] executes them — used by the
    /// witness tightness tests to measure unbounded backlog growth.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was already enabled.
    pub fn enable_pipeline(&mut self, workers: usize) {
        assert!(self.pipeline.is_none(), "pipeline already enabled");
        self.pipeline = Some(SettlePool::new(
            workers,
            Arc::clone(&self.inner),
            Arc::clone(&self.tracker),
        ));
    }

    /// Whether the pipelined commit path is active.
    pub fn pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Blocks until every queued settle/GC job has executed (executing
    /// them inline if the pool has no workers). No-op on the serial path.
    pub fn flush_pipeline(&self) {
        if let Some(p) = &self.pipeline {
            p.flush();
        }
    }

    /// Pipeline backlog gauge for the resource witness: unfinalized
    /// settle/GC jobs plus prepared twin copies parked in stashes. Zero
    /// on the serial path.
    pub fn pipeline_backlog(&self) -> usize {
        self.pipeline.as_ref().map_or(0, |p| {
            (p.stats().pending_settles() + p.stats().pretwinned()) as usize
        })
    }

    /// Report-only pipeline totals, or `None` on the serial path.
    pub fn pipeline_totals(&self) -> Option<PipelineTotals> {
        self.pipeline.as_ref().map(|p| p.totals())
    }

    /// Attaches a fault injector that stalls commits and updates (see
    /// `dmt_api::perturb`). Stalls happen *before* the segment lock is
    /// taken, so they reorder the physical arrival of committers/updaters
    /// without ever holding internal state hostage. Determinism is
    /// unaffected because commit order is serialized by the caller.
    pub fn set_perturb(&mut self, perturb: PerturbHandle) {
        self.perturb = perturb;
    }

    /// Segment length in bytes.
    pub fn len(&self) -> usize {
        self.npages * PAGE_SIZE
    }

    /// Whether the segment has zero pages.
    pub fn is_empty(&self) -> bool {
        self.npages == 0
    }

    /// Number of 4 KiB pages.
    pub fn num_pages(&self) -> usize {
        self.npages
    }

    /// Live/peak page accounting.
    pub fn tracker(&self) -> &Arc<PageTracker> {
        &self.tracker
    }

    /// Registry of workspace base versions (for GC).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Latest committed version id.
    pub fn latest_id(&self) -> u64 {
        self.inner.lock().next_id - 1
    }

    /// Number of retained (not yet collected) versions.
    pub fn retained_versions(&self) -> usize {
        self.inner.lock().versions.len()
    }

    /// High-water mark of retained versions, observed at commit before
    /// the collector trims (the witness gauge for version-chain growth).
    pub fn retained_peak(&self) -> usize {
        self.inner.lock().retained_peak
    }

    /// Current commit-log digest (determinism witness). Drains the
    /// settle pool first so the digest covers every published commit —
    /// making it, like the serial path's, a pure function of the commit
    /// sequence.
    pub fn log_hash(&self) -> u64 {
        self.flush_pipeline();
        self.inner.lock().log.digest()
    }

    /// Writes initial contents. Only valid before any workspace exists.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or a page is already shared
    /// with a workspace snapshot.
    pub fn init_write(&self, addr: Addr, data: &[u8]) {
        assert!(addr + data.len() <= self.len(), "init_write out of bounds");
        let mut inner = self.inner.lock();
        let mut a = addr;
        let mut done = 0;
        while done < data.len() {
            let p = a / PAGE_SIZE;
            let off = a % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(data.len() - done);
            let page = Arc::get_mut(&mut inner.latest[p])
                .expect("init_write after workspaces were created");
            page.bytes_mut()[off..off + n].copy_from_slice(&data[done..done + n]);
            a += n;
            done += n;
        }
    }

    /// Reads from the latest committed version (used after a run).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_latest(&self, addr: Addr, buf: &mut [u8]) {
        assert!(addr + buf.len() <= self.len(), "read_latest out of bounds");
        let inner = self.inner.lock();
        let mut a = addr;
        let mut done = 0;
        while done < buf.len() {
            let p = a / PAGE_SIZE;
            let off = a % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            buf[done..done + n].copy_from_slice(&inner.latest[p].bytes()[off..off + n]);
            a += n;
            done += n;
        }
    }

    /// Attaches a fresh workspace for `tid`, snapshotting the latest
    /// version. Returns the workspace and the number of page-table entries
    /// copied (the paper's fork cost, §3.3).
    pub fn new_workspace(&self, tid: Tid) -> (Workspace, usize) {
        let inner = self.inner.lock();
        let snap = inner.latest.clone();
        let base = inner.next_id - 1;
        drop(inner);
        self.registry.set_base(tid, base);
        let n = snap.len();
        let mut ws = Workspace::new(tid, base, snap);
        if let Some(p) = &self.pipeline {
            ws.attach_pretwin(TwinStash::new(self.npages, Arc::clone(p.stats())));
        }
        (ws, n)
    }

    /// Detaches `tid`'s workspace from GC consideration.
    pub fn detach(&self, tid: Tid) {
        self.registry.mark_dead(tid);
    }

    /// Hands a pooled workspace to a new thread id (thread reuse, §3.3 of
    /// the Consequence paper): the old slot is released and the new slot
    /// pins the workspace's base version.
    pub fn adopt(&self, ws: &mut Workspace, new: Tid) {
        self.registry.mark_dead(ws.tid());
        ws.retag(new);
        self.registry.set_base(new, ws.base());
    }

    /// Re-attaches a pooled workspace (thread reuse, §3.3) so its base
    /// version pins history again. Must be called before the workspace is
    /// used, and the workspace's base must still be retained.
    pub fn reattach(&self, ws: &Workspace) {
        self.registry.set_base(ws.tid(), ws.base());
    }

    /// Publishes `ws`'s dirty pages as a new version.
    ///
    /// **Caller must serialize commits deterministically** (hold the global
    /// token). Pages whose working copy equals its twin are dropped; pages
    /// whose underlying latest page changed since fault time are merged at
    /// byte granularity, local changes winning.
    ///
    /// On the pipelined path only the *publish* half runs here: diffs,
    /// version identity, and the commit result. Merging, page hashing and
    /// log folding are settled by the background pool; the returned
    /// `CommitResult` (and therefore everything schedule-visible) is
    /// identical to the serial path's.
    pub fn commit(&self, ws: &mut Workspace, vc: Option<Arc<VectorClock>>) -> CommitResult {
        self.perturb.jitter(PerturbSite::Commit, ws.tid());
        if let Some(pool) = &self.pipeline {
            return self.commit_pipelined(pool, ws, vc);
        }
        let dirty = ws.take_dirty();
        let mut inner = self.inner.lock();
        let mut pages: Vec<(u32, PageRef)> = Vec::with_capacity(dirty.len());
        let mut merged = 0u32;
        for (p, d) in dirty {
            // One word-wide scan produces the dirty bitmap that answers
            // both "was this page modified?" and "which words to merge?".
            let map = merge::DirtyMap::diff(d.twin.bytes(), d.work.bytes());
            if map.is_clean() {
                continue;
            }
            let latest = &inner.latest[p as usize];
            let new_ref: PageRef = if Arc::ptr_eq(latest, &d.twin) {
                // No remote commit touched this page: adopt the working
                // copy wholesale (zero-copy publish).
                PageRef::from(d.work)
            } else {
                let mut out = Box::new(PageBuf::duplicate(latest));
                merge::merge_with_map(
                    &map,
                    d.twin.bytes(),
                    d.work.bytes(),
                    latest.bytes(),
                    out.bytes_mut(),
                );
                merged += 1;
                PageRef::from(out)
            };
            inner.latest[p as usize] = Arc::clone(&new_ref);
            ws.snap_mut()[p as usize] = Arc::clone(&new_ref);
            pages.push((p, new_ref));
        }
        if pages.is_empty() {
            return CommitResult {
                version: inner.next_id - 1,
                pages: 0,
                merged: 0,
                page_set: 0,
            };
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.log.update_u64(id);
        inner.log.update_u64(ws.tid().0 as u64);
        let mut page_set = Fnv1a::new();
        for (p, r) in &pages {
            inner.log.update_u64(*p as u64);
            inner.log.update_u64(Fnv1a::hash(r.bytes()));
            page_set.update_u64(*p as u64);
        }
        let npages = pages.len() as u32;
        inner.counts.push_back((id, npages, ws.tid()));
        inner.retained_peak = inner.retained_peak.max(inner.versions.len() + 1);
        inner.versions.push_back(Version {
            id,
            base_id: id,
            committer: ws.tid(),
            pages,
            vc,
        });
        CommitResult {
            version: id,
            pages: npages,
            merged,
            page_set: page_set.digest(),
        }
    }

    /// The publish half of a pipelined commit: everything the schedule can
    /// see (diff outcomes, version identity, the commit result) is decided
    /// here under the lock, exactly as the serial path decides it; the
    /// byte merges, page hashes and log folds are queued for the pool.
    fn commit_pipelined(
        &self,
        pool: &SettlePool,
        ws: &mut Workspace,
        vc: Option<Arc<VectorClock>>,
    ) -> CommitResult {
        // Backpressure before the lock: bounds background memory without
        // ever holding segment state hostage.
        pool.throttle();
        let dirty = ws.take_dirty();
        let mut inner = self.inner.lock();
        let mut pages: Vec<(u32, PageRef)> = Vec::with_capacity(dirty.len());
        let mut merges: Vec<MergeJob> = Vec::new();
        let mut merged = 0u32;
        for (p, d) in dirty {
            let map = merge::DirtyMap::diff(d.twin.bytes(), d.work.bytes());
            if map.is_clean() {
                continue;
            }
            let latest = &inner.latest[p as usize];
            let new_ref: PageRef = if Arc::ptr_eq(latest, &d.twin) {
                // No remote commit touched this page: adopt the working
                // copy wholesale, same as the serial path.
                PageRef::from(d.work)
            } else {
                // Conflicted page: publish a deferred shell now, merge in
                // the background. Readers block on the shell's settle
                // latch, so content is exactly the serial merge's.
                let out: PageRef = Arc::new(PageBuf::deferred(&self.tracker));
                merges.push(MergeJob {
                    map,
                    twin: Arc::clone(&d.twin),
                    work: PageRef::from(d.work),
                    base: Arc::clone(latest),
                    out: Arc::clone(&out),
                });
                merged += 1;
                out
            };
            inner.latest[p as usize] = Arc::clone(&new_ref);
            ws.snap_mut()[p as usize] = Arc::clone(&new_ref);
            pages.push((p, new_ref));
        }
        if pages.is_empty() {
            return CommitResult {
                version: inner.next_id - 1,
                pages: 0,
                merged: 0,
                page_set: 0,
            };
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let mut page_set = Fnv1a::new();
        for (p, _) in &pages {
            page_set.update_u64(*p as u64);
        }
        let npages = pages.len() as u32;
        inner.counts.push_back((id, npages, ws.tid()));
        // The mirror already reflects planned GC, so its post-push length
        // equals the serial path's `versions.len() + 1` at this point.
        inner.mirror.push_back((id, id));
        inner.retained_peak = inner.retained_peak.max(inner.mirror.len());
        let log: Vec<(u32, PageRef)> = pages.iter().map(|(p, r)| (*p, Arc::clone(r))).collect();
        inner.versions.push_back(Version {
            id,
            base_id: id,
            committer: ws.tid(),
            pages,
            vc,
        });
        pool.note_deferred(merges.len() as u64);
        // Enqueue under the lock: queue order = issue order, which is what
        // lets workers' deferred reads always point at earlier fills.
        let seq = pool.issue_seq();
        pool.enqueue(Job::Settle {
            seq,
            id,
            tid: ws.tid(),
            merges,
            log,
        });
        // Predictive pre-twinning: have the pool pre-copy this chunk's
        // written pages (the EWMA-capped prediction of the next chunk's
        // write set) so the next faults skip their copy. Wall-clock only —
        // fault accounting is unchanged whether or not a copy is ready.
        if let Some((stash, hint)) = ws.pretwin_request() {
            if hint > 0 {
                let last = inner.versions.back().expect("just pushed");
                let pre: Vec<(u32, PageRef)> = last
                    .pages
                    .iter()
                    .take(hint)
                    .map(|(p, r)| (*p, Arc::clone(r)))
                    .collect();
                pool.enqueue(Job::PreTwin { stash, pages: pre });
            }
        }
        CommitResult {
            version: id,
            pages: npages,
            merged,
            page_set: page_set.digest(),
        }
    }

    /// Installs pre-merged versions produced by a
    /// [`crate::ParallelCommit`]. Caller must serialize with other commits.
    /// On the pipelined path the already-merged pages install immediately
    /// but their log folding goes through the ordered frontier, so barrier
    /// commits and background settles land in one consistent digest order.
    pub(crate) fn install_versions(&self, built: Vec<BuiltVersion>) -> Vec<u64> {
        let mut inner = self.inner.lock();
        let mut ids = Vec::with_capacity(built.len());
        for (tid, pages, vc) in built {
            if pages.is_empty() {
                continue;
            }
            let id = inner.next_id;
            inner.next_id += 1;
            for (p, r) in &pages {
                inner.latest[*p as usize] = Arc::clone(r);
            }
            inner.counts.push_back((id, pages.len() as u32, tid));
            if let Some(pool) = &self.pipeline {
                inner.mirror.push_back((id, id));
                let seq = pool.issue_seq();
                pool.enqueue(Job::Settle {
                    seq,
                    id,
                    tid,
                    merges: Vec::new(),
                    log: pages.clone(),
                });
            } else {
                inner.log.update_u64(id);
                inner.log.update_u64(tid.0 as u64);
                for (p, r) in &pages {
                    inner.log.update_u64(*p as u64);
                    inner.log.update_u64(Fnv1a::hash(r.bytes()));
                }
            }
            inner.versions.push_back(Version {
                id,
                base_id: id,
                committer: tid,
                pages,
                vc,
            });
            ids.push(id);
        }
        ids
    }

    /// Snapshot of the latest page table entry for `p` (phase-1 capture of
    /// the parallel commit).
    pub(crate) fn latest_page(&self, p: u32) -> PageRef {
        Arc::clone(&self.inner.lock().latest[p as usize])
    }

    /// Pins version `id`: some protocol stored it as an exact `update_to`
    /// target, so the collector must not squash a later version across it
    /// (which would silently hand the updater newer state). Refcounted;
    /// release with [`Segment::unpin`].
    pub fn pin(&self, id: u64) {
        let mut inner = self.inner.lock();
        *inner.pins.entry(id).or_insert(0) += 1;
    }

    /// Releases one reference to a pinned `update_to` target.
    pub fn unpin(&self, id: u64) {
        let mut inner = self.inner.lock();
        if let Some(n) = inner.pins.get_mut(&id) {
            *n -= 1;
            if *n == 0 {
                inner.pins.remove(&id);
                // A released pin can unblock squashing.
                inner.gc_seen = None;
            }
        }
    }

    /// Cumulative collector totals `(versions dropped, pairs squashed)`
    /// since the segment was created.
    pub fn gc_totals(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.gc_dropped_total, inner.gc_squashed_total)
    }

    /// Brings `ws` forward to the latest version by replaying deltas.
    ///
    /// # Panics
    ///
    /// Panics if `ws` still has dirty pages (commit first), or if needed
    /// versions were garbage collected (a GC-safety bug).
    pub fn update(&self, ws: &mut Workspace) -> UpdateResult {
        let latest = self.latest_id();
        self.update_to(ws, latest)
    }

    /// Brings `ws` forward to version `upto` exactly — no further, even if
    /// later versions exist. Deterministic runtimes record the version id
    /// at a synchronization event and update to it, so the amount of work
    /// an update does cannot depend on racing commits.
    ///
    /// # Panics
    ///
    /// Panics if `ws` still has dirty pages, if `upto` exceeds the latest
    /// version, or if needed versions were garbage collected.
    pub fn update_to(&self, ws: &mut Workspace, upto: u64) -> UpdateResult {
        assert_eq!(ws.dirty_count(), 0, "update requires a committed workspace");
        self.perturb.jitter(PerturbSite::Update, ws.tid());
        let inner = self.inner.lock();
        assert!(upto < inner.next_id, "update_to a future version");
        let mut propagated = 0u64;
        let mut applied = 0u64;
        if ws.base() < upto {
            // `first_retained` counts *dropped* versions only; squashed
            // versions still cover their whole id range, so this is the
            // precise safety bound.
            assert!(
                ws.base() + 1 >= inner.first_retained,
                "versions needed by update were collected (GC safety violation)"
            );
            // Version ids are increasing but not necessarily dense (the
            // collector squashes adjacent versions), so locate by search.
            let start = inner.versions.partition_point(|v| v.id <= ws.base());
            for v in inner.versions.iter().skip(start) {
                debug_assert!(v.id > ws.base());
                if v.id > upto {
                    // A squashed version spanning `upto` would smuggle in
                    // newer state; pinning must prevent that.
                    assert!(
                        v.base_id > upto,
                        "update_to({upto}) target was squashed away (GC pin bug)"
                    );
                    break;
                }
                for (p, r) in &v.pages {
                    ws.snap_mut()[*p as usize] = Arc::clone(r);
                }
                applied += 1;
            }
            // Propagation accounting comes from the never-squashed count
            // records so it cannot depend on collector progress; the walk
            // above may traverse squashed (merged) representations.
            let cstart = inner.counts.partition_point(|(id, _, _)| *id <= ws.base());
            for (id, npages, committer) in inner.counts.iter().skip(cstart) {
                if *id > upto {
                    break;
                }
                if *committer != ws.tid() {
                    propagated += *npages as u64;
                }
            }
            ws.set_base(upto);
        }
        drop(inner);
        self.registry.set_base(ws.tid(), ws.base());
        UpdateResult {
            new_base: ws.base(),
            pages_propagated: propagated,
            versions_applied: applied,
        }
    }

    /// Performs up to `budget` units of collector work. Returns the units
    /// spent.
    ///
    /// Two kinds of unit, applied front- (oldest-) first:
    ///
    /// * **drop** a version every live workspace has already replayed;
    /// * **squash** the two oldest retained versions into one (union of
    ///   their page sets, newer content winning). Squashing is safe for an
    ///   updater based exactly between the two: the extra pages it applies
    ///   carry content it already has. This is how superseded page copies
    ///   get reclaimed even while a blocked thread pins an old base —
    ///   Conversion's collector does the equivalent at the page level.
    ///
    /// A finite budget models the paper's single-threaded collector: under
    /// high page churn retained versions (and thus live pages) outrun it,
    /// which is exactly the Figure 12 memory blow-up on `canneal`/
    /// `lu_ncb`. The paper's proposed multi-threaded collector corresponds
    /// to a large budget.
    ///
    /// Calls are cheap when nothing changed: a pass that runs out of work
    /// records the registry generation and version count it saw, and
    /// subsequent calls return immediately until a commit, a workspace
    /// base change, or a pin release invalidates that snapshot. This keeps
    /// the per-chunk `gc()` call on the runtime hot path near-free in the
    /// steady state where every thread is up to date.
    pub fn gc(&self, budget: usize) -> GcResult {
        // Read the generation *before* taking the lock: a concurrent base
        // change between the read and the scan makes the early-out snapshot
        // conservative (stale generation → next call rescans), never unsafe.
        let gen = self.registry.generation();
        if let Some(pool) = &self.pipeline {
            return self.gc_pipelined(pool, gen, budget);
        }
        let mut inner = self.inner.lock();
        if inner.gc_seen == Some((gen, inner.next_id)) {
            return GcResult::default();
        }
        let min = self.registry.min_live_base().unwrap_or(inner.next_id - 1);
        let mut res = GcResult::default();
        while res.spent() < budget {
            match inner.versions.front() {
                Some(v) if v.id <= min => {
                    let dropped_to = v.id;
                    inner.versions.pop_front();
                    while inner
                        .counts
                        .front()
                        .map(|(id, _, _)| *id <= dropped_to)
                        .unwrap_or(false)
                    {
                        inner.counts.pop_front();
                    }
                    inner.first_retained += 1;
                    res.dropped += 1;
                }
                _ => break,
            }
        }
        // Squash the oldest retained pair per remaining unit of budget —
        // but never across a pinned `update_to` target (the merged version
        // could no longer reproduce the pinned point exactly).
        while res.spent() < budget && inner.versions.len() >= 2 {
            {
                let va = &inner.versions[0];
                let vb = &inner.versions[1];
                let lo = va.base_id;
                let hi = vb.id;
                if inner.pins.range(lo..hi).next().is_some() {
                    break;
                }
            }
            squash_oldest_pair(&mut inner.versions);
            res.squashed += 1;
        }
        inner.gc_dropped_total += res.dropped as u64;
        inner.gc_squashed_total += res.squashed as u64;
        // Only a pass that stopped for lack of *work* licenses the
        // early-out; a budget-limited pass must resume next call.
        inner.gc_seen = if res.spent() < budget {
            Some((gen, inner.next_id))
        } else {
            None
        };
        res
    }

    /// Pipelined collector pass: *plan* on the logical mirror under the
    /// lock (deterministic — the mirror never lags a plan), queue the
    /// *execution* for the pool's ordered frontier. The returned counts,
    /// the totals and the early-out state are bit-identical to what the
    /// serial pass would produce at the same call point.
    fn gc_pipelined(&self, pool: &SettlePool, gen: u64, budget: usize) -> GcResult {
        let mut inner = self.inner.lock();
        if inner.gc_seen == Some((gen, inner.next_id)) {
            return GcResult::default();
        }
        let min = self.registry.min_live_base().unwrap_or(inner.next_id - 1);
        let mut res = GcResult::default();
        while res.spent() < budget {
            match inner.mirror.front() {
                Some((id, _)) if *id <= min => {
                    inner.mirror.pop_front();
                    res.dropped += 1;
                }
                _ => break,
            }
        }
        while res.spent() < budget && inner.mirror.len() >= 2 {
            let lo = inner.mirror[0].1;
            let hi = inner.mirror[1].0;
            if inner.pins.range(lo..hi).next().is_some() {
                break;
            }
            let (_, base) = inner.mirror.pop_front().expect("len checked");
            inner.mirror.front_mut().expect("len checked").1 = base;
            res.squashed += 1;
        }
        inner.gc_dropped_total += res.dropped as u64;
        inner.gc_squashed_total += res.squashed as u64;
        inner.gc_seen = if res.spent() < budget {
            Some((gen, inner.next_id))
        } else {
            None
        };
        if res.spent() > 0 {
            let seq = pool.issue_seq();
            pool.enqueue(Job::Gc {
                seq,
                drops: res.dropped,
                squashes: res.squashed,
            });
        }
        res
    }
}

/// Squashes the two oldest retained versions into one: union of their
/// page sets (newer content winning — both lists are page-sorted), id of
/// the newer, base id of the older.
fn squash_oldest_pair(versions: &mut VecDeque<Version>) {
    let va = versions.pop_front().expect("squash needs two versions");
    let vb = versions.front_mut().expect("squash needs two versions");
    let mut merged: Vec<(u32, PageRef)> = Vec::with_capacity(va.pages.len() + vb.pages.len());
    let mut ai = va.pages.into_iter().peekable();
    let mut bi = std::mem::take(&mut vb.pages).into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some((pa, _)), Some((pb, _))) => {
                if pa < pb {
                    merged.push(ai.next().expect("peeked"));
                } else if pb < pa {
                    merged.push(bi.next().expect("peeked"));
                } else {
                    let _ = ai.next();
                    merged.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(ai.next().expect("peeked")),
            (None, Some(_)) => merged.push(bi.next().expect("peeked")),
            (None, None) => break,
        }
    }
    vb.pages = merged;
    vb.base_id = va.base_id;
}

/// Frontier callback: folds one settled version's log material into the
/// segment's running digest, in exactly the serial path's field order.
pub(crate) fn fold_commit_log(inner: &mut SegInner, id: u64, tid: Tid, entries: &[(u64, u64)]) {
    inner.log.update_u64(id);
    inner.log.update_u64(tid.0 as u64);
    for (p, h) in entries {
        inner.log.update_u64(*p);
        inner.log.update_u64(*h);
    }
}

/// Frontier callback: executes a planned collector pass against the real
/// version chain. The counts were fixed at plan time against the mirror,
/// so by frontier order the chain is guaranteed to have the planned
/// structure available.
pub(crate) fn exec_gc_plan(inner: &mut SegInner, drops: usize, squashes: usize) {
    for _ in 0..drops {
        let v = inner
            .versions
            .pop_front()
            .expect("planned drop has a version");
        while inner
            .counts
            .front()
            .map(|(id, _, _)| *id <= v.id)
            .unwrap_or(false)
        {
            inner.counts.pop_front();
        }
        inner.first_retained += 1;
    }
    for _ in 0..squashes {
        squash_oldest_pair(&mut inner.versions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_write_visible_to_new_workspace() {
        let seg = Segment::new(4, 4);
        seg.init_write(10, b"abc");
        let (ws, mapped) = seg.new_workspace(Tid(0));
        assert_eq!(mapped, 4);
        let mut b = [0u8; 3];
        ws.read_bytes(10, &mut b);
        assert_eq!(&b, b"abc");
    }

    #[test]
    fn commit_then_update_propagates_between_threads() {
        let seg = Segment::new(4, 4);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (mut b, _) = seg.new_workspace(Tid(1));
        a.write_bytes(0, &[7]);
        let cr = seg.commit(&mut a, None);
        assert_eq!(cr.pages, 1);
        assert_eq!(cr.merged, 0);
        // B does not see it until it updates.
        let mut buf = [0u8; 1];
        b.read_bytes(0, &mut buf);
        assert_eq!(buf[0], 0);
        let ur = seg.update(&mut b);
        assert_eq!(ur.pages_propagated, 1);
        b.read_bytes(0, &mut buf);
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn own_commits_do_not_count_as_propagation() {
        let seg = Segment::new(2, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        a.write_bytes(0, &[1]);
        seg.commit(&mut a, None);
        let ur = seg.update(&mut a);
        assert_eq!(ur.pages_propagated, 0);
        assert_eq!(ur.new_base, 1);
    }

    #[test]
    fn conflicting_commits_merge_at_byte_granularity() {
        let seg = Segment::new(1, 4);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (mut b, _) = seg.new_workspace(Tid(1));
        a.write_bytes(100, &[1]);
        b.write_bytes(200, &[2]);
        seg.commit(&mut a, None);
        let cr = seg.commit(&mut b, None);
        assert_eq!(cr.merged, 1, "B's page conflicted and was merged");
        let mut buf = [0u8; 1];
        seg.read_latest(100, &mut buf);
        assert_eq!(buf[0], 1);
        seg.read_latest(200, &mut buf);
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn last_writer_wins_on_same_byte() {
        let seg = Segment::new(1, 4);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (mut b, _) = seg.new_workspace(Tid(1));
        a.write_bytes(0, &[10]);
        b.write_bytes(0, &[20]);
        seg.commit(&mut a, None);
        seg.commit(&mut b, None); // B commits second: B wins.
        let mut buf = [0u8; 1];
        seg.read_latest(0, &mut buf);
        assert_eq!(buf[0], 20);
    }

    #[test]
    fn unmodified_faulted_pages_are_not_published() {
        let seg = Segment::new(2, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let before = a.ld_u64(0);
        a.st_u64(0, before); // fault, but write the same value
        let cr = seg.commit(&mut a, None);
        assert_eq!(cr.pages, 0);
        assert_eq!(seg.latest_id(), 0, "no version created");
    }

    #[test]
    fn commit_log_hash_is_deterministic() {
        let run = || {
            let seg = Segment::new(2, 2);
            let (mut a, _) = seg.new_workspace(Tid(0));
            let (mut b, _) = seg.new_workspace(Tid(1));
            a.write_bytes(0, &[1, 2, 3]);
            seg.commit(&mut a, None);
            b.write_bytes(4096, &[4]);
            seg.commit(&mut b, None);
            seg.log_hash()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gc_respects_live_bases_and_budget() {
        let seg = Segment::new(1, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (mut b, _) = seg.new_workspace(Tid(1));
        for i in 0..5 {
            a.write_bytes(0, &[i as u8 + 1]);
            seg.commit(&mut a, None);
            seg.update(&mut a);
        }
        assert_eq!(seg.retained_versions(), 5);
        // B is still at base 0: nothing can be dropped, but the pinned
        // history can be squashed down to a single version.
        assert_eq!(
            seg.gc(usize::MAX),
            GcResult {
                dropped: 0,
                squashed: 4
            },
            "four squash units"
        );
        assert_eq!(seg.retained_versions(), 1);
        // B replays the squashed history and sees the final value.
        seg.update(&mut b);
        let mut buf = [0u8; 1];
        b.read_bytes(0, &mut buf);
        assert_eq!(buf[0], 5);
        // Now everything is droppable.
        assert_eq!(
            seg.gc(usize::MAX),
            GcResult {
                dropped: 1,
                squashed: 0
            }
        );
        assert_eq!(seg.retained_versions(), 0);
        assert_eq!(seg.gc_totals(), (1, 4));
    }

    #[test]
    fn gc_budget_limits_work_per_call() {
        let seg = Segment::new(1, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (_b, _) = seg.new_workspace(Tid(1)); // pins base 0
        for i in 0..6 {
            a.write_bytes(0, &[i as u8 + 1]);
            seg.commit(&mut a, None);
            seg.update(&mut a);
        }
        assert_eq!(seg.gc(2).spent(), 2);
        assert_eq!(seg.retained_versions(), 4);
        // A budget-limited pass must not arm the no-work early-out.
        assert_eq!(seg.gc(2).spent(), 2);
        assert_eq!(seg.retained_versions(), 2);
    }

    #[test]
    fn squashed_history_preserves_multi_page_replay() {
        let seg = Segment::new(3, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (mut b, _) = seg.new_workspace(Tid(1)); // pinned at base 0
                                                    // Three commits touching overlapping page sets.
        a.write_bytes(0, &[1]);
        a.write_bytes(4096, &[2]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
        a.write_bytes(4096, &[3]);
        a.write_bytes(8192, &[4]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
        a.write_bytes(0, &[5]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
        seg.gc(usize::MAX); // squash everything B pins
        seg.update(&mut b);
        let mut buf = [0u8; 1];
        b.read_bytes(0, &mut buf);
        assert_eq!(buf[0], 5);
        b.read_bytes(4096, &mut buf);
        assert_eq!(buf[0], 3);
        b.read_bytes(8192, &mut buf);
        assert_eq!(buf[0], 4);
    }

    #[test]
    fn detach_unpins_history() {
        let seg = Segment::new(1, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let (_b, _) = seg.new_workspace(Tid(1));
        a.write_bytes(0, &[1]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
        assert_eq!(seg.gc(usize::MAX).spent(), 0, "B pins version 1");
        seg.detach(Tid(1));
        assert_eq!(seg.gc(usize::MAX).dropped, 1);
    }

    #[test]
    fn idle_gc_early_outs_until_state_changes() {
        let seg = Segment::new(1, 2);
        let (mut a, _) = seg.new_workspace(Tid(0));
        a.write_bytes(0, &[1]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
        assert_eq!(seg.gc(usize::MAX).dropped, 1);
        // No commit and no base change since the exhaustive pass: no-op.
        assert_eq!(seg.gc(usize::MAX), GcResult::default());
        // A new commit invalidates the early-out snapshot.
        a.write_bytes(0, &[2]);
        seg.commit(&mut a, None);
        seg.update(&mut a);
        assert_eq!(seg.gc(usize::MAX).dropped, 1);
    }

    #[test]
    fn peak_pages_grow_with_uncollected_versions() {
        let seg = Segment::new(1, 1);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let base = seg.tracker().live();
        for i in 0..8 {
            a.write_bytes(0, &[i + 1]);
            seg.commit(&mut a, None);
            seg.update(&mut a);
        }
        // Without GC, all 8 page versions are retained.
        assert!(seg.tracker().live() >= base + 7);
        seg.gc(usize::MAX);
        assert!(seg.tracker().live() < base + 7);
    }

    #[test]
    #[should_panic(expected = "update requires a committed workspace")]
    fn update_with_dirty_pages_panics() {
        let seg = Segment::new(1, 1);
        let (mut a, _) = seg.new_workspace(Tid(0));
        a.write_bytes(0, &[1]);
        seg.update(&mut a);
    }

    #[test]
    fn empty_commit_returns_latest() {
        let seg = Segment::new(1, 1);
        let (mut a, _) = seg.new_workspace(Tid(0));
        let cr = seg.commit(&mut a, None);
        assert_eq!(cr.version, 0);
        assert_eq!(cr.pages, 0);
    }
}
