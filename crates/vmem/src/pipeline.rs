//! The asynchronous commit pipeline: a background settle pool that takes
//! byte merging, commit-log folding, version-GC execution and twin
//! preparation off the committer's critical path.
//!
//! Under the pipeline, [`crate::Segment::commit`] only *publishes*: it
//! diffs, installs page identities (deferred shells for conflicted pages)
//! and enqueues the heavy work here. Workers pop jobs FIFO, do all content
//! work (merging, page hashing, twin copies) without any segment lock,
//! then *finalize* in strict issue order through an ordered frontier so
//! the commit-log digest and the collector's structural edits land exactly
//! as the serial path would produce them.
//!
//! Determinism contract: everything schedule-visible (commit results, GC
//! plans, the eventual log digest) is decided at the deterministic publish
//! points under the segment lock; the pool only *executes* those
//! decisions. Its wall-clock progress is therefore unobservable to the
//! schedule — the serial path (`Options::without("pipeline_commit")`)
//! remains the oracle and `stress --pipe-diff` checks the equivalence.
//!
//! Lock hierarchy (strictly inner-most last): finalization frontier →
//! segment inner → job queue. Workers never touch the frontier while
//! holding the segment lock, and the committer enqueues under the segment
//! lock so queue order always matches issue order.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dmt_api::sync::{Condvar, Mutex};
use dmt_api::{Fnv1a, Tid, PAGE_SIZE};

use crate::merge::{self, DirtyMap};
use crate::page::{PageBuf, PageRef, PageTracker};
use crate::segment::{self, SegInner};

/// Backpressure bound on unfinalized jobs: a committer publishing past
/// this backlog waits (wall-clock only, off the segment lock) for the
/// frontier to advance, so background memory stays proportional to a
/// constant, not to run length. Not applied in the stalled-pool regime
/// (zero workers), where the backlog is *supposed* to grow until flush —
/// that is what the witness tightness test measures.
pub const MAX_PENDING: u64 = 64;

/// One conflicted page of a published version: merge `work` over `base`
/// using the publish-time dirty map, deliver into the deferred shell
/// `out`.
pub(crate) struct MergeJob {
    pub map: DirtyMap,
    pub twin: PageRef,
    pub work: PageRef,
    pub base: PageRef,
    pub out: PageRef,
}

/// Work item in the settle queue.
pub(crate) enum Job {
    /// Settle one published version: fill its deferred merges, hash its
    /// pages off-lock, then fold the log material at the frontier.
    Settle {
        seq: u64,
        id: u64,
        tid: Tid,
        merges: Vec<MergeJob>,
        log: Vec<(u32, PageRef)>,
    },
    /// Execute one planned collector pass (counts fixed at plan time).
    Gc {
        seq: u64,
        drops: usize,
        squashes: usize,
    },
    /// Pre-copy predicted next-chunk twins into the workspace's stash.
    PreTwin {
        stash: Arc<TwinStash>,
        pages: Vec<(u32, PageRef)>,
    },
    /// Worker termination sentinel (one per worker, pushed on drop).
    Shutdown,
}

/// Content-free remainder of a job, applied at the ordered frontier.
enum FinJob {
    Log {
        id: u64,
        tid: Tid,
        entries: Vec<(u64, u64)>,
    },
    Gc {
        drops: usize,
        squashes: usize,
    },
}

#[derive(Default)]
struct FinState {
    /// Next issue slot to finalize; jobs completing out of order park.
    next_seq: u64,
    parked: BTreeMap<u64, FinJob>,
}

/// Pipeline gauges and totals. Backlog-facing values feed the resource
/// witness; hit/miss totals are wall-clock-racy and report-only (they
/// never enter any digest or virtual-time account).
#[derive(Debug, Default)]
pub(crate) struct PipeStats {
    issued: AtomicU64,
    finalized: AtomicU64,
    pretwinned: AtomicU64,
    pretwin_hits: AtomicU64,
    pretwin_misses: AtomicU64,
    deferred_pages: AtomicU64,
}

impl PipeStats {
    /// Issued-but-unfinalized settle/GC jobs.
    pub(crate) fn pending_settles(&self) -> u64 {
        self.issued
            .load(Ordering::Relaxed)
            .saturating_sub(self.finalized.load(Ordering::Relaxed))
    }

    /// Prepared twin copies currently parked in stashes.
    pub(crate) fn pretwinned(&self) -> u64 {
        self.pretwinned.load(Ordering::Relaxed)
    }
}

/// Report-only lifetime totals harvested at teardown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineTotals {
    /// Pages published as deferred shells (merges taken off-token).
    pub deferred_pages: u64,
    /// Faults served by a prepared twin copy.
    pub pretwin_hits: u64,
    /// Prepared copies invalidated by an interleaving commit.
    pub pretwin_misses: u64,
}

/// A prepared fault: the source the copy was taken from (validity
/// witness) and the copy itself.
#[derive(Debug)]
struct PreparedTwin {
    src: PageRef,
    copy: Box<PageBuf>,
}

/// Per-workspace stash of pre-copied twins, filled by the pool from the
/// EWMA write-set prediction and consumed by the fault path.
#[derive(Debug)]
pub struct TwinStash {
    slots: Mutex<Vec<Option<PreparedTwin>>>,
    stats: Arc<PipeStats>,
}

impl TwinStash {
    pub(crate) fn new(npages: usize, stats: Arc<PipeStats>) -> Arc<TwinStash> {
        Arc::new(TwinStash {
            slots: Mutex::new((0..npages).map(|_| None).collect()),
            stats,
        })
    }

    /// Parks a prepared copy of `src` for page `p` (replacing any staler
    /// preparation).
    pub(crate) fn put(&self, p: u32, src: PageRef, copy: Box<PageBuf>) {
        let mut slots = self.slots.lock();
        let slot = &mut slots[p as usize];
        if slot.is_none() {
            self.stats.pretwinned.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(PreparedTwin { src, copy });
    }

    /// Takes the prepared copy for `p` if it was made from exactly `src`
    /// (the faulting snapshot page); a copy of any other version is a
    /// stale prediction and is discarded.
    pub(crate) fn take_for(&self, p: usize, src: &PageRef) -> Option<Box<PageBuf>> {
        let prep = { self.slots.lock()[p].take() }?;
        self.stats.pretwinned.fetch_sub(1, Ordering::Relaxed);
        if Arc::ptr_eq(&prep.src, src) {
            self.stats.pretwin_hits.fetch_add(1, Ordering::Relaxed);
            Some(prep.copy)
        } else {
            self.stats.pretwin_misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

impl Drop for TwinStash {
    fn drop(&mut self) {
        let left = self.slots.lock().iter().filter(|s| s.is_some()).count() as u64;
        self.stats.pretwinned.fetch_sub(left, Ordering::Relaxed);
    }
}

/// Shared state between the segment, the workers, and flushers.
struct PipeShared {
    inner: Arc<Mutex<SegInner>>,
    tracker: Arc<PageTracker>,
    q: Mutex<VecDeque<Job>>,
    qcv: Condvar,
    fin: Mutex<FinState>,
    fincv: Condvar,
    stats: Arc<PipeStats>,
}

/// The background settle pool attached to a pipelined segment.
pub(crate) struct SettlePool {
    shared: Arc<PipeShared>,
    workers: Vec<JoinHandle<()>>,
}

impl SettlePool {
    pub(crate) fn new(
        workers: usize,
        inner: Arc<Mutex<SegInner>>,
        tracker: Arc<PageTracker>,
    ) -> SettlePool {
        let shared = Arc::new(PipeShared {
            inner,
            tracker,
            q: Mutex::new(VecDeque::new()),
            qcv: Condvar::new(),
            fin: Mutex::new(FinState::default()),
            fincv: Condvar::new(),
            stats: Arc::new(PipeStats::default()),
        });
        let workers = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        SettlePool { shared, workers }
    }

    pub(crate) fn stats(&self) -> &Arc<PipeStats> {
        &self.shared.stats
    }

    pub(crate) fn totals(&self) -> PipelineTotals {
        let s = &self.shared.stats;
        PipelineTotals {
            deferred_pages: s.deferred_pages.load(Ordering::Relaxed),
            pretwin_hits: s.pretwin_hits.load(Ordering::Relaxed),
            pretwin_misses: s.pretwin_misses.load(Ordering::Relaxed),
        }
    }

    /// Backpressure, called *before* the publish takes the segment lock.
    /// Purely wall-clock: where the committer waits cannot influence the
    /// schedule, only how much background memory accumulates.
    pub(crate) fn throttle(&self) {
        if self.workers.is_empty() {
            return;
        }
        let sh = &self.shared;
        if sh.stats.pending_settles() < MAX_PENDING {
            return;
        }
        let mut fin = sh.fin.lock();
        while sh.stats.issued.load(Ordering::Relaxed) - fin.next_seq >= MAX_PENDING {
            sh.fincv.wait(&mut fin);
        }
    }

    /// Reserves the next finalization slot. Caller must hold the segment
    /// lock so slot order is exactly commit order.
    pub(crate) fn issue_seq(&self) -> u64 {
        self.shared.stats.issued.fetch_add(1, Ordering::Relaxed)
    }

    /// Records pages published as deferred shells.
    pub(crate) fn note_deferred(&self, n: u64) {
        self.shared
            .stats
            .deferred_pages
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Queues a job. Safe (and, for ordered jobs, required) to call while
    /// holding the segment lock: queue push order then matches issue
    /// order, which keeps every deferred read pointing at an
    /// earlier-queued fill.
    pub(crate) fn enqueue(&self, job: Job) {
        self.shared.q.lock().push_back(job);
        self.shared.qcv.notify_one();
    }

    /// Drains every outstanding job and blocks until the frontier reaches
    /// every issued slot. Content work still in the queue is executed
    /// inline — with zero workers this *is* the execution engine, which
    /// is how the stalled-pool regime eventually settles. Must not be
    /// called while holding the segment lock.
    pub(crate) fn flush(&self) {
        let sh = &self.shared;
        loop {
            let job = sh.q.lock().pop_front();
            match job {
                Some(j) => process(sh, j),
                None => break,
            }
        }
        let target = sh.stats.issued.load(Ordering::Relaxed);
        let mut fin = sh.fin.lock();
        while fin.next_seq < target {
            sh.fincv.wait(&mut fin);
        }
    }
}

impl Drop for SettlePool {
    fn drop(&mut self) {
        self.flush();
        {
            let mut q = self.shared.q.lock();
            for _ in 0..self.workers.len() {
                q.push_back(Job::Shutdown);
            }
        }
        self.shared.qcv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &PipeShared) {
    loop {
        let job = {
            let mut q = sh.q.lock();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                sh.qcv.wait(&mut q);
            }
        };
        if matches!(job, Job::Shutdown) {
            return;
        }
        process(sh, job);
    }
}

/// Executes one job's content work (lock-free), then finalizes ordered
/// jobs at the frontier. FIFO pop order guarantees any deferred page a
/// job reads was queued for fill earlier, so waits always point at work
/// already in flight — never at something still behind us in the queue.
fn process(sh: &PipeShared, job: Job) {
    match job {
        Job::Settle {
            seq,
            id,
            tid,
            merges,
            log,
        } => {
            for m in &merges {
                let mut buf = sh
                    .tracker
                    .take()
                    .unwrap_or_else(|| Box::new([0u8; PAGE_SIZE]));
                buf.copy_from_slice(m.base.bytes());
                merge::apply_with_map(&m.map, m.twin.bytes(), m.work.bytes(), &mut buf);
                m.out.settle_fill(buf);
            }
            // Hash page contents outside every lock; the frontier folds
            // only the resulting u64 pairs under the segment lock.
            let entries: Vec<(u64, u64)> = log
                .iter()
                .map(|(p, r)| (*p as u64, Fnv1a::hash(r.bytes())))
                .collect();
            finalize(sh, seq, FinJob::Log { id, tid, entries });
        }
        Job::Gc {
            seq,
            drops,
            squashes,
        } => finalize(sh, seq, FinJob::Gc { drops, squashes }),
        Job::PreTwin { stash, pages } => {
            for (p, src) in pages {
                let copy = Box::new(PageBuf::duplicate(&src));
                stash.put(p, src, copy);
            }
        }
        Job::Shutdown => {}
    }
}

/// Parks `job` at its issue slot and drains the frontier while it is
/// contiguous, applying each job's structural edits under the segment
/// lock in exactly serial-path order.
fn finalize(sh: &PipeShared, seq: u64, job: FinJob) {
    let mut fin = sh.fin.lock();
    fin.parked.insert(seq, job);
    let mut advanced = false;
    loop {
        let next = fin.next_seq;
        let Some(j) = fin.parked.remove(&next) else {
            break;
        };
        {
            let mut inner = sh.inner.lock();
            match j {
                FinJob::Log { id, tid, entries } => {
                    segment::fold_commit_log(&mut inner, id, tid, &entries)
                }
                FinJob::Gc { drops, squashes } => {
                    segment::exec_gc_plan(&mut inner, drops, squashes)
                }
            }
        }
        fin.next_seq += 1;
        sh.stats.finalized.fetch_add(1, Ordering::Relaxed);
        advanced = true;
    }
    if advanced {
        sh.fincv.notify_all();
    }
}
