//! Committed versions of a segment.

use std::sync::Arc;

use dmt_api::{Tid, VectorClock};

use crate::page::PageRef;

/// One committed version: the set of pages that changed relative to the
/// previous version.
///
/// Version ids are assigned densely in commit order, which is the total
/// store order every thread agrees on. A workspace at base version `b`
/// reaches version `v` by replaying the page lists of versions `b+1..=v`.
#[derive(Clone, Debug)]
pub struct Version {
    /// Monotonically increasing id (commit order). After collector
    /// squashing a version may cover a *range* of original ids,
    /// `base_id..=id`.
    pub id: u64,
    /// Lowest original id merged into this version (`id` when unsquashed).
    pub base_id: u64,
    /// Thread that committed this version ([`crate::BARRIER_COMMITTER`] for
    /// merged barrier commits attributed per page instead).
    pub committer: Tid,
    /// Changed pages: `(page index, content)`, sorted by page index.
    pub pages: Vec<(u32, PageRef)>,
    /// Happens-before tag for the §5.3 LRC estimator, when enabled.
    pub vc: Option<Arc<VectorClock>>,
}

impl Version {
    /// Number of pages this version changed.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the version changed no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}
