//! Per-thread isolated workspaces.

use std::sync::Arc;

use dmt_api::{Addr, Tid, PAGE_SIZE};

use crate::page::{PageBuf, PageRef};
use crate::pipeline::TwinStash;

/// A page the workspace has faulted and may have modified.
#[derive(Debug)]
pub struct DirtyPage {
    /// The pristine page as of fault time (shared with the snapshot the
    /// fault happened against, so twins cost no copy).
    pub twin: PageRef,
    /// The thread's private working copy.
    pub work: Box<PageBuf>,
}

/// A thread's isolated view of a [`crate::Segment`].
///
/// Reads hit the working copy for dirty pages and the immutable snapshot
/// otherwise; the first write to a page takes a copy-on-write fault that
/// duplicates the page. All isolation costs are surfaced to the caller:
/// write operations return how many faults they took so the runtime can
/// charge virtual time.
#[derive(Debug)]
pub struct Workspace {
    tid: Tid,
    base: u64,
    snap: Vec<PageRef>,
    dirty: Vec<Option<DirtyPage>>,
    dirty_list: Vec<u32>,
    faults: u64,
    /// Pipelined segments only: the stash the settle pool pre-copies
    /// predicted twins into, and the current prediction budget.
    pretwin: Option<PretwinState>,
}

/// Pre-twinning state attached by a pipelined segment.
#[derive(Debug)]
struct PretwinState {
    stash: Arc<TwinStash>,
    /// Predicted size of the next chunk's write set (EWMA, set by the
    /// runtime before each commit); caps how many pages the pool
    /// pre-copies.
    hint: usize,
}

impl Workspace {
    pub(crate) fn new(tid: Tid, base: u64, snap: Vec<PageRef>) -> Workspace {
        let n = snap.len();
        Workspace {
            tid,
            base,
            snap,
            dirty: (0..n).map(|_| None).collect(),
            dirty_list: Vec::new(),
            faults: 0,
            pretwin: None,
        }
    }

    /// Attaches a pipelined segment's pre-twin stash.
    pub(crate) fn attach_pretwin(&mut self, stash: Arc<TwinStash>) {
        self.pretwin = Some(PretwinState { stash, hint: 0 });
    }

    /// Sets the predicted next-chunk write-set size (the pre-twin budget).
    /// No-op on a serial segment's workspace.
    pub fn set_pretwin_hint(&mut self, hint: usize) {
        if let Some(pt) = &mut self.pretwin {
            pt.hint = hint;
        }
    }

    /// The stash and current budget for the commit path to hand to the
    /// settle pool, if pre-twinning is attached.
    pub(crate) fn pretwin_request(&self) -> Option<(Arc<TwinStash>, usize)> {
        self.pretwin
            .as_ref()
            .map(|pt| (Arc::clone(&pt.stash), pt.hint))
    }

    /// Owning thread.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Version this workspace is based on.
    pub fn base(&self) -> u64 {
        self.base
    }

    pub(crate) fn set_base(&mut self, base: u64) {
        self.base = base;
    }

    pub(crate) fn retag(&mut self, tid: Tid) {
        self.tid = tid;
    }

    /// Number of mapped pages.
    pub fn num_pages(&self) -> usize {
        self.snap.len()
    }

    /// Pages currently dirty (faulted this chunk).
    pub fn dirty_count(&self) -> usize {
        self.dirty_list.len()
    }

    /// Total copy-on-write faults taken over the workspace's lifetime.
    pub fn total_faults(&self) -> u64 {
        self.faults
    }

    pub(crate) fn snap_mut(&mut self) -> &mut Vec<PageRef> {
        &mut self.snap
    }

    /// Drains the dirty set in ascending page order.
    pub(crate) fn take_dirty(&mut self) -> Vec<(u32, DirtyPage)> {
        self.dirty_list.sort_unstable();
        let mut out = Vec::with_capacity(self.dirty_list.len());
        for p in self.dirty_list.drain(..) {
            let d = self.dirty[p as usize]
                .take()
                .expect("dirty list out of sync");
            out.push((p, d));
        }
        out
    }

    #[inline]
    fn check(&self, addr: Addr, len: usize) {
        let end = addr.checked_add(len).expect("address overflow");
        assert!(
            end <= self.snap.len() * PAGE_SIZE,
            "segment access out of bounds: {addr}+{len} > {}",
            self.snap.len() * PAGE_SIZE
        );
    }

    /// Faults page `p` if clean; returns 1 if a fault was taken.
    #[inline]
    fn fault(&mut self, p: usize) -> u32 {
        if self.dirty[p].is_some() {
            return 0;
        }
        let twin = Arc::clone(&self.snap[p]);
        // A prepared copy from the settle pool skips the duplicate; the
        // fault is charged identically either way (wall-clock-only win).
        let work = self
            .pretwin
            .as_ref()
            .and_then(|pt| pt.stash.take_for(p, &twin))
            .unwrap_or_else(|| Box::new(PageBuf::duplicate(&twin)));
        self.dirty[p] = Some(DirtyPage { twin, work });
        self.dirty_list.push(p as u32);
        self.faults += 1;
        1
    }

    /// Reads `buf.len()` bytes at `addr` from the isolated view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut a = addr;
        let mut done = 0;
        while done < buf.len() {
            let p = a / PAGE_SIZE;
            let off = a % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let src: &[u8; PAGE_SIZE] = match &self.dirty[p] {
                Some(d) => d.work.bytes(),
                None => self.snap[p].bytes(),
            };
            buf[done..done + n].copy_from_slice(&src[off..off + n]);
            a += n;
            done += n;
        }
    }

    /// Writes `data` at `addr`; returns the number of faults taken.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) -> u32 {
        self.check(addr, data.len());
        let mut a = addr;
        let mut done = 0;
        let mut faults = 0;
        while done < data.len() {
            let p = a / PAGE_SIZE;
            let off = a % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(data.len() - done);
            faults += self.fault(p);
            let dst = self.dirty[p]
                .as_mut()
                .expect("just faulted")
                .work
                .bytes_mut();
            dst[off..off + n].copy_from_slice(&data[done..done + n]);
            a += n;
            done += n;
        }
        faults
    }

    /// Fast-path aligned-capable `u64` load.
    #[inline]
    pub fn ld_u64(&self, addr: Addr) -> u64 {
        let p = addr / PAGE_SIZE;
        let off = addr % PAGE_SIZE;
        if off + 8 <= PAGE_SIZE {
            self.check(addr, 8);
            let src: &[u8; PAGE_SIZE] = match &self.dirty[p] {
                Some(d) => d.work.bytes(),
                None => self.snap[p].bytes(),
            };
            u64::from_le_bytes(src[off..off + 8].try_into().unwrap())
        } else {
            let mut b = [0u8; 8];
            self.read_bytes(addr, &mut b);
            u64::from_le_bytes(b)
        }
    }

    /// Fast-path `u64` store; returns the number of faults taken.
    #[inline]
    pub fn st_u64(&mut self, addr: Addr, v: u64) -> u32 {
        let p = addr / PAGE_SIZE;
        let off = addr % PAGE_SIZE;
        if off + 8 <= PAGE_SIZE {
            self.check(addr, 8);
            let f = self.fault(p);
            let dst = self.dirty[p]
                .as_mut()
                .expect("just faulted")
                .work
                .bytes_mut();
            dst[off..off + 8].copy_from_slice(&v.to_le_bytes());
            f
        } else {
            self.write_bytes(addr, &v.to_le_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageTracker;

    fn ws(npages: usize) -> Workspace {
        let t = PageTracker::new();
        let snap = (0..npages).map(|_| Arc::new(PageBuf::zeroed(&t))).collect();
        Workspace::new(Tid(0), 0, snap)
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut w = ws(2);
        let faults = w.write_bytes(100, b"hello");
        assert_eq!(faults, 1);
        let mut buf = [0u8; 5];
        w.read_bytes(100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn second_write_to_same_page_takes_no_fault() {
        let mut w = ws(2);
        assert_eq!(w.write_bytes(0, &[1]), 1);
        assert_eq!(w.write_bytes(1, &[2]), 0);
        assert_eq!(w.dirty_count(), 1);
        assert_eq!(w.total_faults(), 1);
    }

    #[test]
    fn cross_page_write_faults_both_pages() {
        let mut w = ws(2);
        let data = [9u8; 16];
        let faults = w.write_bytes(PAGE_SIZE - 8, &data);
        assert_eq!(faults, 2);
        let mut buf = [0u8; 16];
        w.read_bytes(PAGE_SIZE - 8, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn u64_fast_path_matches_byte_path() {
        let mut w = ws(2);
        w.st_u64(16, 0xdead_beef);
        assert_eq!(w.ld_u64(16), 0xdead_beef);
        // Page-straddling store falls back to the byte path.
        w.st_u64(PAGE_SIZE - 3, 0x0102_0304_0506_0708);
        assert_eq!(w.ld_u64(PAGE_SIZE - 3), 0x0102_0304_0506_0708);
    }

    #[test]
    fn twin_preserves_fault_time_contents() {
        let mut w = ws(1);
        w.write_bytes(0, &[42]);
        let dirty = w.take_dirty();
        assert_eq!(dirty.len(), 1);
        let (p, d) = &dirty[0];
        assert_eq!(*p, 0);
        assert_eq!(d.twin.bytes()[0], 0, "twin keeps the pre-write value");
        assert_eq!(d.work.bytes()[0], 42);
    }

    #[test]
    fn take_dirty_returns_sorted_and_clears() {
        let mut w = ws(4);
        w.write_bytes(3 * PAGE_SIZE, &[1]);
        w.write_bytes(PAGE_SIZE, &[1]);
        let d = w.take_dirty();
        assert_eq!(d.iter().map(|(p, _)| *p).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(w.dirty_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let w = ws(1);
        let mut b = [0u8; 16];
        w.read_bytes(PAGE_SIZE - 8, &mut b);
    }

    #[test]
    fn reads_never_fault() {
        let w = ws(1);
        let mut b = [0u8; 64];
        w.read_bytes(0, &mut b);
        assert_eq!(w.total_faults(), 0);
    }
}
