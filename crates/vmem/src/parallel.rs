//! Two-phase parallel commit (§4.2 of the Consequence paper).
//!
//! At a barrier, Conversion can commit many threads' pages in parallel:
//!
//! 1. **Phase 1 (serial, under the global token):** each arriving thread
//!    *registers* its dirty pages. Registration order fixes the per-page
//!    merge order — this is all the determinism needs.
//! 2. **Phase 2 (parallel):** pages are partitioned among the participants;
//!    each participant byte-merges the ordered diffs of its assigned pages.
//!    Phase 2 does several times the work of phase 1, so parallelizing it
//!    is where the barrier speedup comes from (Figure 13, "parallel
//!    barrier").
//! 3. **Install:** the merged pages are published as one version per
//!    participant (in registration order, pages attributed to their last
//!    writer), after which every thread updates its workspace.

use std::sync::Arc;

use dmt_api::sync::Mutex;

use dmt_api::{Tid, VectorClock};

use crate::merge;
use crate::page::{PageBuf, PageRef};
use crate::segment::Segment;
use crate::workspace::Workspace;

/// One registered diff: a thread's modification of one page. The dirty-word
/// bitmap is computed once at registration (where it also answers the
/// is-modified test) and reused by every phase-2 merge of this diff.
#[derive(Clone)]
struct Diff {
    participant: usize,
    twin: PageRef,
    work: PageRef,
    map: merge::DirtyMap,
}

struct PagePlan {
    page: u32,
    /// Latest committed content captured at first registration.
    base: PageRef,
    /// Diffs in registration (= commit) order.
    diffs: Vec<Diff>,
}

#[derive(Default)]
struct PcInner {
    participants: Vec<(Tid, Option<Arc<VectorClock>>)>,
    /// Plan entries in ascending page order of first registration.
    plan: Vec<PagePlan>,
    /// page -> index into `plan`.
    index: std::collections::HashMap<u32, usize>,
    sealed: bool,
}

/// Statistics from one participant's phase-2 merge work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeWork {
    /// Pages this participant produced.
    pub pages: u32,
    /// Pages that required an actual multi-writer or remote merge.
    pub merged: u32,
}

/// A two-phase parallel commit in progress.
pub struct ParallelCommit {
    inner: Mutex<PcInner>,
    /// Merged output: `(page, content, last-writer participant)`.
    results: Mutex<Vec<(u32, PageRef, usize)>>,
}

impl ParallelCommit {
    /// Creates an empty parallel commit.
    pub fn new() -> ParallelCommit {
        ParallelCommit {
            inner: Mutex::new(PcInner::default()),
            results: Mutex::new(Vec::new()),
        }
    }

    /// Phase 1: registers `ws`'s dirty pages under the caller's
    /// serialization. Returns `(participant index, pages registered)`.
    ///
    /// # Panics
    ///
    /// Panics if called after [`seal`](Self::seal).
    pub fn register(
        &self,
        seg: &Segment,
        ws: &mut Workspace,
        vc: Option<Arc<VectorClock>>,
    ) -> (usize, u32) {
        let mut inner = self.inner.lock();
        assert!(!inner.sealed, "register after seal");
        let participant = inner.participants.len();
        inner.participants.push((ws.tid(), vc));
        let dirty = ws.take_dirty();
        let mut registered = 0;
        for (p, d) in dirty {
            let map = merge::DirtyMap::diff(d.twin.bytes(), d.work.bytes());
            if map.is_clean() {
                continue;
            }
            registered += 1;
            let work: PageRef = PageRef::from(d.work);
            if let Some(&i) = inner.index.get(&p) {
                inner.plan[i].diffs.push(Diff {
                    participant,
                    twin: d.twin,
                    work,
                    map,
                });
            } else {
                let base = seg.latest_page(p);
                let i = inner.plan.len();
                inner.plan.push(PagePlan {
                    page: p,
                    base,
                    diffs: vec![Diff {
                        participant,
                        twin: d.twin,
                        work,
                        map,
                    }],
                });
                inner.index.insert(p, i);
            }
        }
        (participant, registered)
    }

    /// Ends phase 1. After sealing, participants may merge concurrently.
    ///
    /// The caller must hold whatever serializes commits (the global token)
    /// from before this call until [`install`](Self::install) returns:
    /// every page's merge base is re-captured *here*, so commits that
    /// happened between early registrations and the seal (threads that
    /// performed other synchronization before arriving) are preserved.
    pub fn seal(&self, seg: &Segment) {
        let mut inner = self.inner.lock();
        for e in inner.plan.iter_mut() {
            e.base = seg.latest_page(e.page);
        }
        inner.sealed = true;
    }

    /// Number of registered participants.
    pub fn participants(&self) -> usize {
        self.inner.lock().participants.len()
    }

    /// Phase 2: merges the pages assigned to `participant` (those whose
    /// *last* registered writer it is — a deterministic partition). Safe to
    /// call concurrently from all participants.
    ///
    /// # Panics
    ///
    /// Panics if called before [`seal`](Self::seal).
    pub fn merge_for(&self, participant: usize) -> MergeWork {
        let mine: Vec<(u32, PageRef, Vec<Diff>)> = {
            let inner = self.inner.lock();
            assert!(inner.sealed, "merge_for before seal");
            inner
                .plan
                .iter()
                .filter(|e| e.diffs.last().map(|d| d.participant) == Some(participant))
                .map(|e| (e.page, Arc::clone(&e.base), e.diffs.clone()))
                .collect()
        };
        let mut work = MergeWork::default();
        let mut out: Vec<(u32, PageRef, usize)> = Vec::with_capacity(mine.len());
        for (page, base, diffs) in mine {
            work.pages += 1;
            let last = diffs.last().expect("plan entry without diffs").participant;
            let sole_clean = diffs.len() == 1 && Arc::ptr_eq(&base, &diffs[0].twin);
            let merged: PageRef = if sole_clean {
                // Single writer of an unchanged page: adopt its copy.
                Arc::clone(&diffs[0].work)
            } else {
                work.merged += 1;
                let mut buf = Box::new(PageBuf::duplicate(&base));
                for d in &diffs {
                    merge::apply_with_map(&d.map, d.twin.bytes(), d.work.bytes(), buf.bytes_mut());
                }
                PageRef::from(buf)
            };
            out.push((page, merged, last));
        }
        self.results.lock().extend(out);
        work
    }

    /// Installs the merged pages into `seg` as one version per participant,
    /// in registration order. Call exactly once, after every participant's
    /// [`merge_for`](Self::merge_for) has returned, serialized with other
    /// commits. Returns, per participant in registration order, the thread
    /// id and the number of *installed* pages attributed to it (merged
    /// pages count once, for their last writer).
    pub fn install(&self, seg: &Segment) -> Vec<(Tid, u32)> {
        let inner = self.inner.lock();
        let mut results = self.results.lock();
        debug_assert_eq!(
            results.len(),
            inner.plan.len(),
            "install before all merges finished"
        );
        let mut per: Vec<Vec<(u32, PageRef)>> = vec![Vec::new(); inner.participants.len()];
        results.sort_unstable_by_key(|(p, _, _)| *p);
        for (page, content, last) in results.drain(..) {
            per[last].push((page, content));
        }
        let built: Vec<_> = per
            .into_iter()
            .enumerate()
            .map(|(i, pages)| {
                let (tid, vc) = &inner.participants[i];
                (*tid, pages, vc.clone())
            })
            .collect();
        let counts: Vec<(Tid, u32)> = built
            .iter()
            .map(|(t, pages, _)| (*t, pages.len() as u32))
            .collect();
        seg.install_versions(built);
        counts
    }
}

impl Default for ParallelCommit {
    fn default() -> Self {
        ParallelCommit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the same writes through a serial commit sequence and through a
    /// parallel commit; final segment bytes must be identical.
    #[test]
    fn parallel_commit_equals_serial_commit() {
        let writes: Vec<(Tid, usize, Vec<u8>)> = vec![
            (Tid(0), 0, vec![1, 2, 3]),
            (Tid(1), 2, vec![9, 9]),         // overlaps T0's page 0, byte 2
            (Tid(2), 5000, vec![7]),         // page 1
            (Tid(1), 4096 + 10, vec![5, 5]), // also page 1
        ];

        let serial = {
            let seg = Segment::new(4, 4);
            let mut ws: Vec<Workspace> = (0..3).map(|t| seg.new_workspace(Tid(t)).0).collect();
            for (t, addr, data) in &writes {
                ws[t.index()].write_bytes(*addr, data);
            }
            for w in ws.iter_mut() {
                seg.commit(w, None);
            }
            let mut buf = vec![0u8; seg.len()];
            seg.read_latest(0, &mut buf);
            buf
        };

        let parallel = {
            let seg = Segment::new(4, 4);
            let mut ws: Vec<Workspace> = (0..3).map(|t| seg.new_workspace(Tid(t)).0).collect();
            for (t, addr, data) in &writes {
                ws[t.index()].write_bytes(*addr, data);
            }
            let pc = ParallelCommit::new();
            for w in ws.iter_mut() {
                pc.register(&seg, w, None);
            }
            pc.seal(&seg);
            for i in 0..3 {
                pc.merge_for(i);
            }
            pc.install(&seg);
            let mut buf = vec![0u8; seg.len()];
            seg.read_latest(0, &mut buf);
            buf
        };

        assert_eq!(serial, parallel);
    }

    /// Deterministic LCG (MMIX constants) driving the property cases.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Everything an interleaved history can observe about a segment.
    #[derive(Debug, PartialEq, Eq)]
    struct Observed {
        bytes: Vec<u8>,
        log_hash: u64,
        latest_id: u64,
        retained_peak: usize,
        gc_totals: (u64, u64),
    }

    /// Drives one scripted interleaved commit/update/GC history against a
    /// segment (optionally pipelined) and returns every observable.
    fn run_history(seed: u64, workers: Option<usize>) -> Observed {
        const PAGES: usize = 6;
        const THREADS: usize = 3;
        let mut seg = Segment::new(PAGES, THREADS);
        if let Some(w) = workers {
            seg.enable_pipeline(w);
        }
        let mut ws: Vec<Workspace> = (0..THREADS)
            .map(|t| seg.new_workspace(Tid(t as u32)).0)
            .collect();
        let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        for _ in 0..120 {
            let t = rng.below(THREADS as u64) as usize;
            for _ in 0..1 + rng.below(3) {
                let addr = rng.below((PAGES * dmt_api::PAGE_SIZE) as u64) as usize;
                ws[t].write_bytes(addr, &[rng.next() as u8]);
            }
            seg.commit(&mut ws[t], None);
            seg.update(&mut ws[t]);
            // Occasionally bring another (clean) workspace forward too, so
            // histories interleave updates from lagging bases.
            if rng.below(3) == 0 {
                let o = (t + 1) % THREADS;
                seg.update(&mut ws[o]);
            }
            seg.gc(rng.below(4) as usize);
        }
        for w in ws.iter_mut() {
            seg.commit(w, None);
            seg.update(w);
        }
        seg.flush_pipeline();
        let mut bytes = vec![0u8; seg.len()];
        seg.read_latest(0, &mut bytes);
        Observed {
            bytes,
            log_hash: seg.log_hash(),
            latest_id: seg.latest_id(),
            retained_peak: seg.retained_peak(),
            gc_totals: seg.gc_totals(),
        }
    }

    /// The pipelined settle path must be observationally identical to the
    /// serial oracle across interleaved commit/update/GC histories: same
    /// final bytes, same commit-log digest, same `retained_peak`
    /// accounting, same collector totals — for a busy pool and for a
    /// single worker (maximum settle lag short of stalling).
    #[test]
    fn pipelined_settle_matches_serial_across_interleaved_histories() {
        for seed in 0..6u64 {
            let serial = run_history(seed, None);
            let piped = run_history(seed, Some(2));
            assert_eq!(serial, piped, "seed {seed}: pipelined (2 workers) diverged");
            let lagged = run_history(seed, Some(1));
            assert_eq!(serial, lagged, "seed {seed}: pipelined (1 worker) diverged");
        }
    }

    /// A stalled pool (zero workers) accumulates backlog — every commit
    /// and planned GC pass queues — and `flush_pipeline` then settles to
    /// exactly the serial observables. Single-writer disjoint pages keep
    /// the history merge-free, so nothing blocks on an unfilled shell.
    #[test]
    fn stalled_pool_backlog_settles_to_serial_state_on_flush() {
        let run = |workers: Option<usize>| {
            let mut seg = Segment::new(4, 1);
            if let Some(w) = workers {
                seg.enable_pipeline(w);
            }
            let (mut a, _) = seg.new_workspace(Tid(0));
            for i in 0..10u64 {
                a.write_bytes((i % 4) as usize * dmt_api::PAGE_SIZE, &[i as u8 + 1]);
                seg.commit(&mut a, None);
                seg.update(&mut a);
                seg.gc(2);
            }
            if workers == Some(0) {
                assert!(
                    seg.pipeline_backlog() >= 10,
                    "stalled pool must accumulate at least one job per commit, got {}",
                    seg.pipeline_backlog()
                );
            }
            seg.flush_pipeline();
            assert_eq!(seg.pipeline_backlog(), 0, "flush drains the backlog");
            let mut bytes = vec![0u8; seg.len()];
            seg.read_latest(0, &mut bytes);
            (bytes, seg.log_hash(), seg.gc_totals(), seg.retained_peak())
        };
        assert_eq!(run(None), run(Some(0)));
    }

    /// Parallel barrier commits on a pipelined segment go through the
    /// ordered log frontier and must digest identically to the serial
    /// segment's immediate folding.
    #[test]
    fn pipelined_barrier_install_matches_serial_log() {
        let run = |workers: Option<usize>| {
            let mut seg = Segment::new(3, 4);
            if let Some(w) = workers {
                seg.enable_pipeline(w);
            }
            let mut ws: Vec<Workspace> = (0..3).map(|t| seg.new_workspace(Tid(t)).0).collect();
            // An ordinary commit first, so the barrier merges real bases.
            ws[0].write_bytes(0, &[9]);
            seg.commit(&mut ws[0], None);
            for (i, w) in ws.iter_mut().enumerate() {
                seg.update(w);
                w.write_bytes(i * 7, &[i as u8 + 1]);
                w.write_bytes(4096 + i, &[i as u8 + 10]);
            }
            let pc = ParallelCommit::new();
            for w in ws.iter_mut() {
                pc.register(&seg, w, None);
            }
            pc.seal(&seg);
            for i in 0..3 {
                pc.merge_for(i);
            }
            pc.install(&seg);
            let mut bytes = vec![0u8; seg.len()];
            seg.read_latest(0, &mut bytes);
            (bytes, seg.log_hash(), seg.latest_id())
        };
        assert_eq!(run(None), run(Some(2)));
        assert_eq!(run(None), run(Some(0)));
    }

    #[test]
    fn later_registrant_wins_conflicting_bytes() {
        let seg = Segment::new(1, 4);
        let mut a = seg.new_workspace(Tid(0)).0;
        let mut b = seg.new_workspace(Tid(1)).0;
        a.write_bytes(0, &[10]);
        b.write_bytes(0, &[20]);
        let pc = ParallelCommit::new();
        pc.register(&seg, &mut a, None);
        pc.register(&seg, &mut b, None);
        pc.seal(&seg);
        pc.merge_for(0);
        pc.merge_for(1);
        pc.install(&seg);
        let mut buf = [0u8; 1];
        seg.read_latest(0, &mut buf);
        assert_eq!(buf[0], 20, "registration order = commit order");
    }

    #[test]
    fn pages_are_partitioned_by_last_writer() {
        let seg = Segment::new(3, 4);
        let mut a = seg.new_workspace(Tid(0)).0;
        let mut b = seg.new_workspace(Tid(1)).0;
        a.write_bytes(0, &[1]); // page 0: only A
        a.write_bytes(4096, &[1]); // page 1: A then B
        b.write_bytes(4097, &[2]);
        b.write_bytes(8192, &[2]); // page 2: only B
        let pc = ParallelCommit::new();
        pc.register(&seg, &mut a, None);
        pc.register(&seg, &mut b, None);
        pc.seal(&seg);
        let wa = pc.merge_for(0);
        let wb = pc.merge_for(1);
        assert_eq!(wa.pages, 1, "A merges only page 0");
        assert_eq!(wb.pages, 2, "B merges pages 1 and 2 (last writer)");
        let counts = pc.install(&seg);
        assert_eq!(counts.len(), 2, "one entry per participant");
        assert_eq!(counts[0].1, 1, "A installed page 0");
        assert_eq!(counts[1].1, 2, "B installed pages 1 and 2");
    }

    #[test]
    fn updates_after_install_see_merged_state() {
        let seg = Segment::new(2, 4);
        let mut a = seg.new_workspace(Tid(0)).0;
        let mut b = seg.new_workspace(Tid(1)).0;
        a.write_bytes(0, &[1]);
        b.write_bytes(1, &[2]);
        let pc = ParallelCommit::new();
        pc.register(&seg, &mut a, None);
        pc.register(&seg, &mut b, None);
        pc.seal(&seg);
        pc.merge_for(0);
        pc.merge_for(1);
        pc.install(&seg);
        seg.update(&mut a);
        seg.update(&mut b);
        let mut buf = [0u8; 2];
        a.read_bytes(0, &mut buf);
        assert_eq!(buf, [1, 2]);
        b.read_bytes(0, &mut buf);
        assert_eq!(buf, [1, 2]);
    }

    #[test]
    fn empty_participants_create_no_versions() {
        let seg = Segment::new(1, 2);
        let mut a = seg.new_workspace(Tid(0)).0;
        let pc = ParallelCommit::new();
        pc.register(&seg, &mut a, None);
        pc.seal(&seg);
        pc.merge_for(0);
        let counts = pc.install(&seg);
        assert_eq!(counts, vec![(Tid(0), 0)]);
        assert_eq!(seg.latest_id(), 0);
    }
}
