//! User-space reimplementation of **Conversion**: multi-version concurrency
//! control for main-memory segments (Merrifield & Eriksson, EuroSys 2013).
//!
//! Conversion is the thread-isolation substrate of Consequence. A
//! [`Segment`] is a paged, versioned shared-memory region. Each thread
//! attaches a [`Workspace`] — a snapshot of the segment at some version —
//! and operates on it in complete isolation:
//!
//! * the first write to a page takes a **copy-on-write fault**, saving a
//!   pristine *twin* and giving the thread a private working copy;
//! * [`Segment::commit`] publishes the thread's dirty pages as a new
//!   version, merging onto the latest version at **byte granularity** with
//!   a last-writer-wins policy (so concurrent writers of disjoint bytes of
//!   one page both survive);
//! * [`Segment::update`] brings a workspace forward to the latest version
//!   by replaying the page deltas of the intervening versions.
//!
//! The paper's kernel module tracks page modifications through real page
//! tables; here the same algorithms run on heap-allocated 4 KiB pages. The
//! fault/commit/update costs that a runtime must charge to virtual time are
//! returned from each operation rather than priced here, keeping this crate
//! policy-free.
//!
//! Two extras serve Consequence directly:
//!
//! * [`ParallelCommit`]: the two-phase commit used by the deterministic
//!   barrier (§4.2) — a serialized registration phase that fixes the
//!   per-page merge order, then an embarrassingly parallel merge phase;
//! * a budgeted garbage collector ([`Segment::gc`]) modelling the paper's
//!   single-threaded collector that can fall behind page churn (Fig. 12);
//! * an asynchronous commit pipeline ([`Segment::enable_pipeline`]) that
//!   takes byte merging, log folding, GC execution and twin preparation
//!   off the committer's critical path while keeping every
//!   schedule-visible outcome bit-identical to the serial path (see
//!   [`pipeline`]).

pub mod merge;
pub mod page;
pub mod parallel;
pub mod pipeline;
pub mod registry;
pub mod segment;
pub mod version;
pub mod workspace;

pub use dmt_api::PAGE_SIZE;
pub use merge::DirtyMap;
pub use page::{PageBuf, PageRef, PageTracker};
pub use parallel::ParallelCommit;
pub use pipeline::{PipelineTotals, MAX_PENDING};
pub use registry::Registry;
pub use segment::{CommitResult, GcResult, Segment, UpdateResult};
pub use version::Version;
pub use workspace::Workspace;

/// Sentinel committer id used for versions not attributable to one thread.
pub const BARRIER_COMMITTER: dmt_api::Tid = dmt_api::Tid(u32::MAX);
