//! Word-wide page diffing and merging with byte-granularity semantics.
//!
//! Conversion resolves page-level write conflicts by comparing a thread's
//! working copy against the pristine *twin* it saved at fault time: bytes
//! the thread actually changed win over the concurrently committed page
//! (last-writer-wins, in commit order); untouched bytes take the remote
//! value. This is what makes false sharing within a page survive
//! deterministic isolation.
//!
//! The *semantics* are byte-granular, but the *implementation* is not: the
//! hot path compares and merges in `u64` words and records which words
//! differ in a per-page [`DirtyMap`] bitmap (one bit per 8-byte word, 64
//! bytes per page). Byte work happens only inside dirty words, and only
//! when the latest committed word actually changed since fault time —
//! otherwise the whole working word is adopted, which is byte-identical
//! because every byte the committer left untouched still equals the twin
//! (and thus the latest) value.
//!
//! The bitmap is computed once per page and reused between the twin-diff
//! (is-this-page-modified?) and the publish/merge step, so a commit scans
//! each dirty page once instead of twice. The original byte-loop
//! implementations are kept as `*_bytewise` references: the `vmem` bench
//! (`docs/PERF.md`) measures both paths and pins the speedup.

use dmt_api::PAGE_SIZE;

/// 8-byte words per page.
pub const PAGE_WORDS: usize = PAGE_SIZE / 8;
/// `u64` limbs in a [`DirtyMap`] (one bit per page word).
pub const MAP_WORDS: usize = PAGE_WORDS / 64;

#[inline(always)]
fn word(p: &[u8; PAGE_SIZE], w: usize) -> u64 {
    u64::from_ne_bytes(p[w * 8..w * 8 + 8].try_into().expect("8-byte chunk"))
}

#[inline(always)]
fn set_word(p: &mut [u8; PAGE_SIZE], w: usize, v: u64) {
    p[w * 8..w * 8 + 8].copy_from_slice(&v.to_ne_bytes());
}

/// Low bit of each byte set where `a` and `b` differ in that byte: OR the
/// byte's bits down into its low bit. Branch-free; called only for dirty
/// words. Multiplying the result by `0xff` widens it into a full byte
/// select mask.
#[inline(always)]
fn byte_diff_lo(a: u64, b: u64) -> u64 {
    let x = a ^ b;
    let lo = (x | (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    let lo = (lo | (lo >> 2)) & 0x0303_0303_0303_0303;
    (lo | (lo >> 1)) & 0x0101_0101_0101_0101
}

/// Per-page dirty-word bitmap: bit `w` is set when 8-byte word `w` of the
/// working copy differs from the twin.
///
/// Computed once per page at commit time and reused for both the "did this
/// fault lead to a modification?" test and the actual merge, halving the
/// number of full-page scans on the commit hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirtyMap {
    bits: [u64; MAP_WORDS],
}

impl DirtyMap {
    /// Diffs `work` against `twin`, one bit per differing word. This is the
    /// single full-page scan of the commit path.
    pub fn diff(twin: &[u8; PAGE_SIZE], work: &[u8; PAGE_SIZE]) -> DirtyMap {
        let mut bits = [0u64; MAP_WORDS];
        // chunks_exact lets the compiler drop the per-word bounds checks
        // and vectorize the compare.
        let mut t = twin.chunks_exact(8);
        let mut k = work.chunks_exact(8);
        for bitset in bits.iter_mut() {
            let mut b = 0u64;
            for i in 0..64 {
                let tw = t.next().expect("PAGE_WORDS words");
                let wk = k.next().expect("PAGE_WORDS words");
                b |= ((tw != wk) as u64) << i;
            }
            *bitset = b;
        }
        DirtyMap { bits }
    }

    /// Whether no word differs (the fault was not followed by an actual
    /// modification).
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.bits.iter().all(|b| *b == 0)
    }

    /// Number of dirty words.
    #[inline]
    pub fn dirty_words(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// Iterates the dirty word indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(limb, &b)| {
            let mut b = b;
            std::iter::from_fn(move || {
                if b == 0 {
                    return None;
                }
                let i = b.trailing_zeros() as usize;
                b &= b - 1;
                Some(limb * 64 + i)
            })
        })
    }
}

/// Merges one committed page using a precomputed [`DirtyMap`].
///
/// `twin` is the page as it looked when the committing thread faulted it,
/// `work` the thread's working copy, and `latest` the currently committed
/// page (which may contain other threads' newer writes). The result takes
/// `work[i]` wherever the thread modified byte `i` and `latest[i]`
/// elsewhere. Returns the number of bytes the committing thread
/// contributed.
///
/// `out` must already hold a copy of `latest` (clean words are not
/// touched); [`merge_into`] handles the general case.
pub fn merge_with_map(
    map: &DirtyMap,
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    latest: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let mut changed = 0;
    for (limb, &bitset) in map.bits.iter().enumerate() {
        if bitset == 0 {
            continue;
        }
        if bitset.count_ones() >= DENSE_LIMB {
            changed += merge_limb_dense(limb, twin, work, latest, out);
            continue;
        }
        let mut b = bitset;
        while b != 0 {
            let w = limb * 64 + b.trailing_zeros() as usize;
            b &= b - 1;
            let wk = word(work, w);
            // Byte-select, branch-free: bytes the committer changed take
            // the working value, every other byte keeps the latest value.
            // This subsumes the uncontended case (latest == twin), where
            // the unchanged bytes of `wk` already equal `latest`.
            let lo = byte_diff_lo(word(twin, w), wk);
            changed += lo.count_ones() as usize;
            let m = lo * 0xff;
            set_word(out, w, (wk & m) | (word(latest, w) & !m));
        }
    }
    changed
}

/// Dirty words per 64-word limb above which it is cheaper to merge the
/// whole limb unconditionally (a straight-line vectorizable loop) than to
/// walk its set bits. Clean words within the limb rewrite the latest value
/// over itself, which is harmless.
const DENSE_LIMB: u32 = 12;

/// Branch-free byte-LWW merge of one full 512-byte limb stripe.
#[inline]
fn merge_limb_dense(
    limb: usize,
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    latest: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let base = limb * 512;
    let mut changed = 0;
    let t = twin[base..base + 512].chunks_exact(8);
    let k = work[base..base + 512].chunks_exact(8);
    let l = latest[base..base + 512].chunks_exact(8);
    let o = out[base..base + 512].chunks_exact_mut(8);
    for (((ob, tb), kb), lb) in o.zip(t).zip(k).zip(l) {
        let tw = u64::from_ne_bytes(tb.try_into().expect("8-byte chunk"));
        let wk = u64::from_ne_bytes(kb.try_into().expect("8-byte chunk"));
        let lt = u64::from_ne_bytes(lb.try_into().expect("8-byte chunk"));
        let lo = byte_diff_lo(tw, wk);
        changed += lo.count_ones() as usize;
        let m = lo * 0xff;
        ob.copy_from_slice(&((wk & m) | (lt & !m)).to_ne_bytes());
    }
    changed
}

/// Applies a thread's diff (`work` vs `twin`, precomputed as `map`) in
/// place onto `out`. Equivalent to [`merge_with_map`] with `latest`
/// pre-loaded into `out`; used by the parallel barrier commit, which
/// applies several diffs to one page in commit order.
pub fn apply_with_map(
    map: &DirtyMap,
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let mut changed = 0;
    for (limb, &bitset) in map.bits.iter().enumerate() {
        if bitset == 0 {
            continue;
        }
        if bitset.count_ones() >= DENSE_LIMB {
            changed += apply_limb_dense(limb, twin, work, out);
            continue;
        }
        let mut b = bitset;
        while b != 0 {
            let w = limb * 64 + b.trailing_zeros() as usize;
            b &= b - 1;
            let wk = word(work, w);
            let lo = byte_diff_lo(word(twin, w), wk);
            changed += lo.count_ones() as usize;
            let m = lo * 0xff;
            set_word(out, w, (wk & m) | (word(out, w) & !m));
        }
    }
    changed
}

/// In-place variant of [`merge_limb_dense`]: `out` doubles as the latest
/// value, as in [`apply_with_map`].
#[inline]
fn apply_limb_dense(
    limb: usize,
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let base = limb * 512;
    let mut changed = 0;
    let t = twin[base..base + 512].chunks_exact(8);
    let k = work[base..base + 512].chunks_exact(8);
    let o = out[base..base + 512].chunks_exact_mut(8);
    for ((ob, tb), kb) in o.zip(t).zip(k) {
        let tw = u64::from_ne_bytes(tb.try_into().expect("8-byte chunk"));
        let wk = u64::from_ne_bytes(kb.try_into().expect("8-byte chunk"));
        let lt = u64::from_ne_bytes((&*ob).try_into().expect("8-byte chunk"));
        let lo = byte_diff_lo(tw, wk);
        changed += lo.count_ones() as usize;
        let m = lo * 0xff;
        ob.copy_from_slice(&((wk & m) | (lt & !m)).to_ne_bytes());
    }
    changed
}

/// Merges one committed page (see [`merge_with_map`] for the semantics).
///
/// Unlike the commit path — which computes a [`DirtyMap`] first because it
/// needs the is-clean answer before allocating an output page — this entry
/// point produces `out` in a single fused, branch-free pass: every word is
/// a byte-select between `work` (bytes the committer changed) and `latest`
/// (everything else), so no bitmap, no pre-copy of `latest`, and no second
/// scan. Clean words degenerate to copying the `latest` word.
pub fn merge_into(
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    latest: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let mut changed = 0;
    let t = twin.chunks_exact(8);
    let k = work.chunks_exact(8);
    let l = latest.chunks_exact(8);
    let o = out.chunks_exact_mut(8);
    for (((ob, tb), kb), lb) in o.zip(t).zip(k).zip(l) {
        let tw = u64::from_ne_bytes(tb.try_into().expect("8-byte chunk"));
        let wk = u64::from_ne_bytes(kb.try_into().expect("8-byte chunk"));
        let lt = u64::from_ne_bytes(lb.try_into().expect("8-byte chunk"));
        let lo = byte_diff_lo(tw, wk);
        changed += lo.count_ones() as usize;
        let m = lo * 0xff;
        ob.copy_from_slice(&((wk & m) | (lt & !m)).to_ne_bytes());
    }
    changed
}

/// Applies a thread's diff (`work` vs `twin`) in place onto `out`.
///
/// Equivalent to [`merge_into`] with `latest` pre-loaded into `out`.
pub fn apply_diff(
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let map = DirtyMap::diff(twin, work);
    apply_with_map(&map, twin, work, out)
}

/// Whether `work` differs from `twin` anywhere (i.e. the fault was followed
/// by an actual modification).
pub fn is_modified(twin: &[u8; PAGE_SIZE], work: &[u8; PAGE_SIZE]) -> bool {
    twin != work
}

/// Reference byte-loop implementations, kept for differential testing and
/// as the baseline the `vmem` bench compares the word path against.
pub mod bytewise {
    use super::PAGE_SIZE;

    /// Byte-loop [`super::merge_into`]: the pre-optimization hot path.
    pub fn merge_into(
        twin: &[u8; PAGE_SIZE],
        work: &[u8; PAGE_SIZE],
        latest: &[u8; PAGE_SIZE],
        out: &mut [u8; PAGE_SIZE],
    ) -> usize {
        let mut changed = 0;
        for i in 0..PAGE_SIZE {
            if work[i] != twin[i] {
                out[i] = work[i];
                changed += 1;
            } else {
                out[i] = latest[i];
            }
        }
        changed
    }

    /// Byte-loop [`super::apply_diff`].
    pub fn apply_diff(
        twin: &[u8; PAGE_SIZE],
        work: &[u8; PAGE_SIZE],
        out: &mut [u8; PAGE_SIZE],
    ) -> usize {
        let mut changed = 0;
        for i in 0..PAGE_SIZE {
            if work[i] != twin[i] {
                out[i] = work[i];
                changed += 1;
            }
        }
        changed
    }

    /// Byte-loop modification test.
    pub fn is_modified(twin: &[u8; PAGE_SIZE], work: &[u8; PAGE_SIZE]) -> bool {
        (0..PAGE_SIZE).any(|i| twin[i] != work[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(f: impl Fn(usize) -> u8) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Box::new([0u8; PAGE_SIZE]);
        for i in 0..PAGE_SIZE {
            p[i] = f(i);
        }
        p
    }

    #[test]
    fn local_changes_win_remote_fills_rest() {
        let twin = page(|_| 0);
        let mut work = page(|_| 0);
        work[10] = 7;
        let mut latest = page(|_| 0);
        latest[10] = 9; // remote also wrote byte 10
        latest[20] = 5; // remote wrote byte 20, we did not
        let mut out = Box::new([0u8; PAGE_SIZE]);
        let changed = merge_into(&twin, &work, &latest, &mut out);
        assert_eq!(changed, 1);
        assert_eq!(out[10], 7, "committer's byte wins (last writer)");
        assert_eq!(out[20], 5, "remote byte is preserved");
    }

    #[test]
    fn unmodified_page_merges_to_latest() {
        let twin = page(|i| (i % 251) as u8);
        let work = page(|i| (i % 251) as u8);
        let latest = page(|i| (i % 13) as u8);
        let mut out = Box::new([0u8; PAGE_SIZE]);
        assert_eq!(merge_into(&twin, &work, &latest, &mut out), 0);
        assert_eq!(&out[..], &latest[..]);
        assert!(!is_modified(&twin, &work));
        assert!(DirtyMap::diff(&twin, &work).is_clean());
    }

    #[test]
    fn apply_diff_matches_merge_into() {
        let twin = page(|i| (i % 7) as u8);
        let mut work = page(|i| (i % 7) as u8);
        work[0] = 0xff;
        work[4095] = 0xee;
        let latest = page(|i| (i % 11) as u8);
        let mut out_a = Box::new([0u8; PAGE_SIZE]);
        merge_into(&twin, &work, &latest, &mut out_a);
        let mut out_b = Box::new(*latest);
        let changed = apply_diff(&twin, &work, &mut out_b);
        assert_eq!(changed, 2);
        assert_eq!(&out_a[..], &out_b[..]);
    }

    #[test]
    fn disjoint_writers_both_survive() {
        // Two threads write disjoint bytes of the same page; whoever commits
        // second must preserve the first committer's bytes.
        let base = page(|_| 0);
        let mut work_a = page(|_| 0);
        work_a[100] = 1;
        let mut work_b = page(|_| 0);
        work_b[200] = 2;

        // A commits first: latest is base, so result has byte 100 = 1.
        let mut after_a = Box::new([0u8; PAGE_SIZE]);
        merge_into(&base, &work_a, &base, &mut after_a);
        // B commits second against A's result.
        let mut after_b = Box::new([0u8; PAGE_SIZE]);
        merge_into(&base, &work_b, &after_a, &mut after_b);
        assert_eq!(after_b[100], 1);
        assert_eq!(after_b[200], 2);
    }

    #[test]
    fn same_word_disjoint_bytes_both_survive() {
        // False sharing *within* one 8-byte word: the contended-word byte
        // path must preserve the remote writer's bytes.
        let base = page(|_| 0);
        let mut work_a = page(|_| 0);
        work_a[64] = 1; // word 8, byte 0
        let mut work_b = page(|_| 0);
        work_b[65] = 2; // word 8, byte 1

        let mut after_a = Box::new([0u8; PAGE_SIZE]);
        merge_into(&base, &work_a, &base, &mut after_a);
        let mut after_b = Box::new([0u8; PAGE_SIZE]);
        merge_into(&base, &work_b, &after_a, &mut after_b);
        assert_eq!(after_b[64], 1, "first committer's byte survives");
        assert_eq!(after_b[65], 2, "second committer's byte lands");
    }

    #[test]
    fn word_path_matches_bytewise_reference() {
        // Differential check across densities, including word-straddling
        // and word-internal conflicts.
        let mut seed = 0x9e37_79b9_u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            seed >> 33
        };
        for density in [0usize, 1, 8, 64, 400, PAGE_SIZE] {
            let twin = page(|i| (i % 17) as u8);
            let mut work = Box::new(*twin);
            for _ in 0..density {
                let i = (rnd() as usize) % PAGE_SIZE;
                work[i] = work[i].wrapping_add(1 + (rnd() % 255) as u8);
            }
            let latest = page(|i| {
                if i % 3 == 0 {
                    (i % 101) as u8
                } else {
                    (i % 17) as u8
                }
            });
            let mut fast = Box::new([0u8; PAGE_SIZE]);
            let fast_n = merge_into(&twin, &work, &latest, &mut fast);
            let mut slow = Box::new([0u8; PAGE_SIZE]);
            let slow_n = bytewise::merge_into(&twin, &work, &latest, &mut slow);
            assert_eq!(fast_n, slow_n, "changed-byte count (density {density})");
            assert_eq!(&fast[..], &slow[..], "merge bytes (density {density})");

            let mut fast_in = Box::new(*latest);
            let mut slow_in = Box::new(*latest);
            assert_eq!(
                apply_diff(&twin, &work, &mut fast_in),
                bytewise::apply_diff(&twin, &work, &mut slow_in),
            );
            assert_eq!(&fast_in[..], &slow_in[..]);
            assert_eq!(
                is_modified(&twin, &work),
                bytewise::is_modified(&twin, &work)
            );
        }
    }

    #[test]
    fn dirty_map_iterates_exact_word_set() {
        let twin = page(|_| 0);
        let mut work = page(|_| 0);
        work[0] = 1; // word 0
        work[15] = 1; // word 1
        work[4088] = 1; // word 511
        let map = DirtyMap::diff(&twin, &work);
        assert_eq!(map.iter().collect::<Vec<_>>(), vec![0, 1, 511]);
        assert_eq!(map.dirty_words(), 3);
        assert!(!map.is_clean());
    }
}
