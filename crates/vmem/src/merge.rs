//! Byte-granularity page merging.
//!
//! Conversion resolves page-level write conflicts by comparing a thread's
//! working copy against the pristine *twin* it saved at fault time: bytes
//! the thread actually changed win over the concurrently committed page
//! (last-writer-wins, in commit order); untouched bytes take the remote
//! value. This is what makes false sharing within a page survive
//! deterministic isolation.

use dmt_api::PAGE_SIZE;

/// Merges one committed page.
///
/// `twin` is the page as it looked when the committing thread faulted it,
/// `work` the thread's working copy, and `latest` the currently committed
/// page (which may contain other threads' newer writes). The result takes
/// `work[i]` wherever the thread modified byte `i` and `latest[i]`
/// elsewhere. Returns the number of bytes the committing thread contributed.
pub fn merge_into(
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    latest: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let mut changed = 0;
    for i in 0..PAGE_SIZE {
        if work[i] != twin[i] {
            out[i] = work[i];
            changed += 1;
        } else {
            out[i] = latest[i];
        }
    }
    changed
}

/// Applies a thread's diff (`work` vs `twin`) in place onto `out`.
///
/// Equivalent to [`merge_into`] with `latest` pre-loaded into `out`; used by
/// the parallel barrier commit, which applies several diffs to one page in
/// commit order.
pub fn apply_diff(
    twin: &[u8; PAGE_SIZE],
    work: &[u8; PAGE_SIZE],
    out: &mut [u8; PAGE_SIZE],
) -> usize {
    let mut changed = 0;
    for i in 0..PAGE_SIZE {
        if work[i] != twin[i] {
            out[i] = work[i];
            changed += 1;
        }
    }
    changed
}

/// Whether `work` differs from `twin` anywhere (i.e. the fault was followed
/// by an actual modification).
pub fn is_modified(twin: &[u8; PAGE_SIZE], work: &[u8; PAGE_SIZE]) -> bool {
    twin != work
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(f: impl Fn(usize) -> u8) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Box::new([0u8; PAGE_SIZE]);
        for i in 0..PAGE_SIZE {
            p[i] = f(i);
        }
        p
    }

    #[test]
    fn local_changes_win_remote_fills_rest() {
        let twin = page(|_| 0);
        let mut work = page(|_| 0);
        work[10] = 7;
        let mut latest = page(|_| 0);
        latest[10] = 9; // remote also wrote byte 10
        latest[20] = 5; // remote wrote byte 20, we did not
        let mut out = Box::new([0u8; PAGE_SIZE]);
        let changed = merge_into(&twin, &work, &latest, &mut out);
        assert_eq!(changed, 1);
        assert_eq!(out[10], 7, "committer's byte wins (last writer)");
        assert_eq!(out[20], 5, "remote byte is preserved");
    }

    #[test]
    fn unmodified_page_merges_to_latest() {
        let twin = page(|i| (i % 251) as u8);
        let work = page(|i| (i % 251) as u8);
        let latest = page(|i| (i % 13) as u8);
        let mut out = Box::new([0u8; PAGE_SIZE]);
        assert_eq!(merge_into(&twin, &work, &latest, &mut out), 0);
        assert_eq!(&out[..], &latest[..]);
        assert!(!is_modified(&twin, &work));
    }

    #[test]
    fn apply_diff_matches_merge_into() {
        let twin = page(|i| (i % 7) as u8);
        let mut work = page(|i| (i % 7) as u8);
        work[0] = 0xff;
        work[4095] = 0xee;
        let latest = page(|i| (i % 11) as u8);
        let mut out_a = Box::new([0u8; PAGE_SIZE]);
        merge_into(&twin, &work, &latest, &mut out_a);
        let mut out_b = Box::new(*latest);
        let changed = apply_diff(&twin, &work, &mut out_b);
        assert_eq!(changed, 2);
        assert_eq!(&out_a[..], &out_b[..]);
    }

    #[test]
    fn disjoint_writers_both_survive() {
        // Two threads write disjoint bytes of the same page; whoever commits
        // second must preserve the first committer's bytes.
        let base = page(|_| 0);
        let mut work_a = page(|_| 0);
        work_a[100] = 1;
        let mut work_b = page(|_| 0);
        work_b[200] = 2;

        // A commits first: latest is base, so result has byte 100 = 1.
        let mut after_a = Box::new([0u8; PAGE_SIZE]);
        merge_into(&base, &work_a, &base, &mut after_a);
        // B commits second against A's result.
        let mut after_b = Box::new([0u8; PAGE_SIZE]);
        merge_into(&base, &work_b, &after_a, &mut after_b);
        assert_eq!(after_b[100], 1);
        assert_eq!(after_b[200], 2);
    }
}
